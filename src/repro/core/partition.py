"""Iteration and data partitions (Definitions 2 and 3).

``P_Psi(I^n)`` groups iterations into blocks: two iterations land in the
same block iff their difference lies in ``Psi``.  We realize this with
the exact orthogonal-projection key of
:meth:`repro.ratlinalg.span.Subspace.coset_key` -- equal keys iff the
difference is in the subspace.  Block base points are the
lexicographically smallest iteration of each block (a valid choice of
the paper's ``b_j``), and blocks are numbered in base-point order.

``P_Psi(A)`` then collects, per block, every element each array is
touched at: ``B_j^A = { H_A i + c_l : i in B_j, all l }`` -- optionally
restricted to non-redundant computations (Section III.C: "only the data
accessed by the nonredundant computations must be considered").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.references import ReferenceModel
from repro.analysis.trace import CompId
from repro.lang.space import IterationSpace
from repro.ratlinalg.matrix import RatVec
from repro.ratlinalg.span import Subspace


@dataclass(frozen=True)
class IterationBlock:
    """One block ``B_j`` of the iteration partition."""

    index: int
    base_point: tuple[int, ...]
    iterations: tuple[tuple[int, ...], ...]  # lexicographic order

    def __len__(self) -> int:
        return len(self.iterations)

    def __contains__(self, it) -> bool:
        return tuple(it) in set(self.iterations)


@dataclass(frozen=True)
class DataBlock:
    """One block ``B_j^A`` of a data partition."""

    array: str
    block_index: int
    elements: frozenset[tuple[int, ...]]

    def __len__(self) -> int:
        return len(self.elements)


def iteration_partition(space: IterationSpace, psi: Subspace) -> list[IterationBlock]:
    """``P_Psi(I^n)``: the list of iteration blocks, base-point ordered.

    ``dim(Psi) = n`` yields a single block (the whole space);
    ``dim(Psi) = 0`` yields one block per iteration.
    """
    if psi.ambient_dim != space.depth:
        raise ValueError(
            f"Psi lives in Q^{psi.ambient_dim} but the loop has depth {space.depth}"
        )
    groups: dict[tuple, list[tuple[int, ...]]] = {}
    for it in space.iterate():
        key = psi.coset_key(RatVec(it))
        groups.setdefault(key, []).append(it)
    # space.iterate() is lexicographic, so each group's first entry is its
    # lexicographic minimum; order blocks by that base point.
    ordered = sorted(groups.values(), key=lambda g: g[0])
    return [
        IterationBlock(index=j, base_point=g[0], iterations=tuple(g))
        for j, g in enumerate(ordered)
    ]


def block_index_map(blocks: list[IterationBlock]) -> dict[tuple[int, ...], int]:
    """iteration -> block index lookup."""
    out: dict[tuple[int, ...], int] = {}
    for b in blocks:
        for it in b.iterations:
            out[it] = b.index
    return out


def data_partition(
    model: ReferenceModel,
    blocks: list[IterationBlock],
    array: str,
    live: Optional[set[CompId]] = None,
) -> list[DataBlock]:
    """``P_Psi(A)`` for one array.

    With ``live`` given, only accesses of live (non-redundant)
    computations contribute elements.
    """
    info = model.arrays[array]
    out: list[DataBlock] = []
    for b in blocks:
        elements: set[tuple[int, ...]] = set()
        for it in b.iterations:
            for ref in info.references:
                if live is not None and (ref.stmt_index, it) not in live:
                    continue
                elements.add(info.element_at(it, ref.offset))
        out.append(DataBlock(array=array, block_index=b.index,
                             elements=frozenset(elements)))
    return out


def all_data_partitions(
    model: ReferenceModel,
    blocks: list[IterationBlock],
    live: Optional[set[CompId]] = None,
) -> dict[str, list[DataBlock]]:
    return {name: data_partition(model, blocks, name, live=live)
            for name in model.arrays}
