"""Partitioning-space provenance: *why* is each direction in Psi?

For a chosen strategy, lists every vector contributed to the combined
partitioning space together with its origin -- a kernel direction of
some ``H_A`` (self-reuse through one reference), a data-referenced
vector's particular solution (Definition 4), a flow-dependence solution
(Theorem 2), or a useful-dependence vector after elimination (Theorems
3-4).  This is the compiler's "-fopt-report" for the technique: it
tells the user exactly which reference pair serializes their loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.analysis.dependence import DependenceKind, dependence_between
from repro.analysis.drv import data_referenced_vectors
from repro.analysis.redundancy import RedundancyAnalysis, analyze_redundancy
from repro.analysis.references import ReferenceModel
from repro.core.strategy import Strategy
from repro.ratlinalg.matrix import RatVec
from repro.ratlinalg.rref import nullspace
from repro.ratlinalg.smith import solve_diophantine
from repro.ratlinalg.solve import solve_particular
from repro.ratlinalg.span import Subspace


@dataclass(frozen=True)
class Contribution:
    """One vector in Psi and its origin."""

    array: str
    vector: tuple          # exact rational entries as Fractions
    origin: str            # "kernel" | "drv" | "flow" | "useful"
    detail: str            # human-readable provenance

    def render(self) -> str:
        vec = "(" + ", ".join(str(x) for x in self.vector) + ")"
        return f"{vec:<16} from {self.array}: {self.detail}"


def _ref_name(ref) -> str:
    role = "write" if ref.is_write else "read"
    return f"S{ref.stmt_index + 1} {role}"


def explain_partitioning_space(
    model: ReferenceModel,
    strategy: Strategy = Strategy.NONDUPLICATE,
    duplicate_arrays=None,
    eliminate_redundant: bool = False,
    redundancy: Optional[RedundancyAnalysis] = None,
) -> list[Contribution]:
    """Every contribution to Psi under the given strategy, in order."""
    if duplicate_arrays is None:
        dup = frozenset(model.arrays) if strategy is Strategy.DUPLICATE \
            else frozenset()
    else:
        dup = frozenset(duplicate_arrays)
    if eliminate_redundant and redundancy is None:
        redundancy = analyze_redundancy(model)

    out: list[Contribution] = []

    def add(array: str, vec: RatVec, origin: str, detail: str) -> None:
        out.append(Contribution(array=array, vector=tuple(vec),
                                origin=origin, detail=detail))

    for name, info in model.arrays.items():
        use_reduced = name in dup
        if eliminate_redundant:
            assert redundancy is not None
            edges = [d for d in redundancy.useful_edges if d.array == name
                     and (not use_reduced or d.kind is DependenceKind.FLOW)]
            for dep in edges:
                sol = solve_diophantine(info.h, dep.src.offset - dep.dst.offset)
                if sol is None:
                    continue
                add(name, sol.particular, "useful",
                    f"useful {dep.kind.value} dependence "
                    f"{_ref_name(dep.src)} -> {_ref_name(dep.dst)}")
            needs_kernel = bool(edges) or not use_reduced and any(
                redundancy.n_set(r.stmt_index) for r in info.references)
            if needs_kernel:
                for k in nullspace(info.h):
                    add(name, k, "kernel", "Ker(H): self-reuse through one reference")
            continue
        if use_reduced:
            flow_found = False
            for w in info.writes():
                for r in info.reads():
                    if dependence_between(info, w, r, model.space) is None:
                        continue
                    t = solve_particular(info.h, w.offset - r.offset)
                    if t is not None:
                        flow_found = True
                        add(name, t, "flow",
                            f"flow dependence {_ref_name(w)} -> {_ref_name(r)} "
                            f"(kept under duplication)")
            if flow_found:
                for k in nullspace(info.h):
                    add(name, k, "kernel",
                        "Ker(H): self-reuse through one reference")
        else:
            for k in nullspace(info.h):
                add(name, k, "kernel", "Ker(H): self-reuse through one reference")
            from repro.core.refspace import _condition2_holds

            for drv in data_referenced_vectors(info):
                t = solve_particular(info.h, drv.vector)
                if t is None:
                    continue
                if not _condition2_holds(info, drv.vector, model.space):
                    continue
                r = tuple(int(x) for x in drv.vector)
                add(name, t, "drv",
                    f"data-referenced vector r={r} between "
                    f"{_ref_name(drv.first)} and {_ref_name(drv.second)}")

    return out


def render_contributions(contribs: list[Contribution],
                         psi: Optional[Subspace] = None) -> str:
    """Plain-text provenance listing (deduplicated by spanned direction)."""
    if not contribs:
        lines = ["Psi = span(phi): every iteration is its own block"]
    else:
        lines = [c.render() for c in contribs]
    if psi is not None:
        lines.append(f"combined: {psi!r} "
                     f"({psi.ambient_dim - psi.dim} forall dimension(s))")
    return "\n".join(lines)
