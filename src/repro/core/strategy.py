"""Strategy selection and the combined partitioning space (Theorems 1-4).

A *strategy* answers three questions:

1. May array elements be replicated?  (non-duplicate vs. duplicate)
2. Which arrays are replicated?  (all duplicable arrays by default, or
   a user-chosen subset -- the paper's L5' duplicates only ``B`` while
   L5'' duplicates both ``A`` and ``B``)
3. Are redundant computations eliminated first?  (Section III.C)

Given the answers, each array contributes its per-array space and the
partitioning space is the span of the union (Theorems 1-4):

    Psi = span(X_1 ∪ X_2 ∪ ... ∪ X_k).

The parallelism exposed is ``dim(Ker(Psi)) = n - dim(Psi)`` forall
dimensions: the smaller ``dim(Psi)``, the more parallelism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.redundancy import RedundancyAnalysis, analyze_redundancy
from repro.analysis.references import ArrayInfo, ReferenceModel
from repro.core.refspace import (
    kernel_space,
    minimal_reduced_reference_space,
    minimal_reference_space,
    reduced_reference_space,
    reference_space,
)
from repro.ratlinalg.span import Subspace


class Strategy(enum.Enum):
    """Top-level partitioning strategy."""

    NONDUPLICATE = "nonduplicate"  # Theorem 1 (or 3 with elimination)
    DUPLICATE = "duplicate"        # Theorem 2 (or 4 with elimination)


@dataclass
class SpaceBreakdown:
    """The combined partitioning space plus per-array contributions."""

    strategy: Strategy
    eliminate_redundant: bool
    duplicated_arrays: frozenset[str]
    per_array: dict[str, Subspace]
    psi: Subspace
    redundancy: Optional[RedundancyAnalysis] = field(default=None, repr=False)

    @property
    def dim(self) -> int:
        return self.psi.dim

    @property
    def parallel_dims(self) -> int:
        """Number of forall dimensions after transformation (``n - dim(Psi)``)."""
        return self.psi.ambient_dim - self.psi.dim

    def is_fully_sequential(self) -> bool:
        return self.psi.is_full()

    def is_fully_parallel(self) -> bool:
        return self.psi.is_zero()


def _array_is_live(info: ArrayInfo, redundancy: RedundancyAnalysis) -> bool:
    return any(redundancy.n_set(ref.stmt_index) for ref in info.references)


def partitioning_space(
    model: ReferenceModel,
    strategy: Strategy = Strategy.NONDUPLICATE,
    duplicate_arrays: Optional[Iterable[str]] = None,
    eliminate_redundant: bool = False,
    redundancy: Optional[RedundancyAnalysis] = None,
) -> SpaceBreakdown:
    """Compute ``Psi`` for the chosen strategy.

    ``duplicate_arrays`` (only meaningful under ``Strategy.DUPLICATE``)
    restricts replication to the named arrays; the others contribute
    their full (non-duplicate) reference space.  ``None`` means "all
    arrays" (the Theorem 2 / Theorem 4 default).
    """
    n = model.nest.depth
    if duplicate_arrays is not None:
        dup: frozenset[str] = frozenset(duplicate_arrays)
        unknown = dup - set(model.arrays)
        if unknown:
            raise ValueError(f"unknown arrays in duplicate_arrays: {sorted(unknown)}")
        if strategy is Strategy.NONDUPLICATE and dup:
            raise ValueError("duplicate_arrays requires Strategy.DUPLICATE")
    else:
        dup = frozenset(model.arrays) if strategy is Strategy.DUPLICATE else frozenset()

    if eliminate_redundant and redundancy is None:
        redundancy = analyze_redundancy(model)

    per_array: dict[str, Subspace] = {}
    psi = Subspace.zero(n)
    for name, info in model.arrays.items():
        use_reduced = name in dup
        if eliminate_redundant:
            assert redundancy is not None
            if use_reduced:
                space = minimal_reduced_reference_space(info, redundancy)
            else:
                space = minimal_reference_space(info, redundancy)
                # Non-duplicate exclusivity: a singular H_A lets two
                # iterations reach one element through a single live
                # reference, so Ker(H_A) must stay in the space (no-op
                # for the paper's nonsingular-H assumption).
                if _array_is_live(info, redundancy):
                    space = space.union_span(kernel_space(info))
        else:
            if use_reduced:
                space = reduced_reference_space(info, model.space)
            else:
                space = reference_space(info, model.space)
        per_array[name] = space
        psi = psi.union_span(space)

    return SpaceBreakdown(
        strategy=strategy,
        eliminate_redundant=eliminate_redundant,
        duplicated_arrays=dup,
        per_array=per_array,
        psi=psi,
        redundancy=redundancy,
    )
