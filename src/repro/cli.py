"""Command-line compiler driver.

    python -m repro analyze   <file|--loop L1>         reference analysis
    python -m repro partition <file|--loop L1> [...]   partition + render
    python -m repro transform <file|--loop L4> [...]   parallel form
    python -m repro verify    <file|--loop L1> [...]   end-to-end check
    python -m repro select    <file|--loop L5> -p 16   strategy selection
    python -m repro figures                            regenerate Figs. 1-10
    python -m repro tables                             Tables I & II

Loops come from a mini-language source file or the built-in catalog
(``--loop``).  Strategy flags: ``--duplicate`` (all arrays),
``--duplicate-arrays A,B`` (subset), ``--eliminate`` (Section III.C).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    analyze_redundancy,
    build_reference_graph,
    data_referenced_vectors,
    extract_references,
    is_fully_duplicable,
)
from repro.core import Strategy, build_plan
from repro.lang import catalog, parse, to_source
from repro.lang.ast import LoopNest
from repro.machine.cost import TRANSPUTER
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.perf import choose_strategy, table1_rows, table2_rows
from repro.perf.tables import format_rows
from repro.runtime import verify_plan
from repro.transform import to_pseudocode, to_spmd_pseudocode, transform_nest
from repro.viz import figures as figmod
from repro.viz import render_data_partition, render_iteration_partition


def _load_nest(args) -> LoopNest:
    if args.loop:
        fn = catalog.ALL_LOOPS.get(args.loop)
        if fn is None:
            raise SystemExit(
                f"unknown catalog loop {args.loop!r}; available: "
                f"{', '.join(sorted(catalog.ALL_LOOPS))}")
        return fn()
    if not args.file:
        raise SystemExit("give a source file or --loop NAME")
    with open(args.file) as fh:
        return parse(fh.read(), name=args.file)


def _strategy_kwargs(args) -> dict:
    kwargs: dict = {}
    if getattr(args, "duplicate", False) or getattr(args, "duplicate_arrays", None):
        kwargs["strategy"] = Strategy.DUPLICATE
        if getattr(args, "duplicate_arrays", None):
            kwargs["duplicate_arrays"] = set(args.duplicate_arrays.split(","))
    else:
        kwargs["strategy"] = Strategy.NONDUPLICATE
    if getattr(args, "eliminate", False):
        kwargs["eliminate_redundant"] = True
    return kwargs


def cmd_analyze(args, out) -> int:
    nest = _load_nest(args)
    model = extract_references(nest)
    print(to_source(nest), file=out)
    print(file=out)
    for name, info in model.arrays.items():
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        dup = ("fully duplicable"
               if is_fully_duplicable(info, model.space)
               else "partially duplicable")
        print(f"array {name}: H = {info.h!r}", file=out)
        print(f"  references: "
              f"{[r.describe(nest.indices) for r in info.references]}", file=out)
        print(f"  data-referenced vectors: {drvs}", file=out)
        print(f"  {dup}", file=out)
        g = build_reference_graph(model, name)
        for s, d, k in g.edge_names():
            print(f"  edge {s} -> {d} [{k}]", file=out)
    if args.eliminate:
        red = analyze_redundancy(model)
        print(file=out)
        print(red.summary(), file=out)
    return 0


def cmd_partition(args, out) -> int:
    nest = _load_nest(args)
    plan = build_plan(nest, **_strategy_kwargs(args))
    print(plan.summary(), file=out)
    print(file=out)
    if nest.depth == 2:
        print(render_iteration_partition(plan.blocks,
                                         title="iteration -> block"), file=out)
        for name, dblocks in plan.data_blocks.items():
            info = plan.model.arrays[name]
            if info.rank == 2:
                print(file=out)
                print(render_data_partition(dblocks, title=f"array {name}"),
                      file=out)
    else:
        for b in plan.blocks[:12]:
            print(f"  block {b.index}: base {b.base_point}, "
                  f"{len(b)} iterations", file=out)
        if plan.num_blocks > 12:
            print(f"  ... {plan.num_blocks - 12} more blocks", file=out)
    return 0


def cmd_transform(args, out) -> int:
    nest = _load_nest(args)
    plan = build_plan(nest, **_strategy_kwargs(args))
    tnest = transform_nest(nest, plan.psi)
    if args.processors:
        grid = shape_grid(args.processors, tnest.k)
        print(to_spmd_pseudocode(tnest, grid), file=out)
        print(file=out)
        stats = workload_stats(assign_blocks(tnest, grid))
        print(stats.summary(), file=out)
    else:
        print(to_pseudocode(tnest), file=out)
    return 0


def cmd_verify(args, out) -> int:
    nest = _load_nest(args)
    plan = build_plan(nest, **_strategy_kwargs(args))
    scalars = {}
    if args.scalars:
        for part in args.scalars.split(","):
            k, v = part.split("=")
            scalars[k.strip()] = float(v)
    report = verify_plan(plan, scalars=scalars)
    print(f"blocks: {report.num_blocks}", file=out)
    print(f"executed iterations: {report.executed_iterations}", file=out)
    print(f"skipped (redundant) computations: "
          f"{report.skipped_computations}", file=out)
    print(f"remote accesses: {report.remote_accesses}", file=out)
    print(f"parallel == sequential: {report.equal}", file=out)
    print("OK" if report.ok else "FAILED", file=out)
    return 0 if report.ok else 1


def cmd_select(args, out) -> int:
    nest = _load_nest(args)
    result = choose_strategy(nest, args.processors, cost=TRANSPUTER,
                             consider_elimination=args.eliminate)
    print(result.table(), file=out)
    print(f"\nbest: {result.best.label} "
          f"({result.best.blocks} blocks)", file=out)
    return 0


def cmd_program(args, out) -> int:
    from repro.lang import parse_multi
    from repro.program import Program, plan_program, verify_program

    with open(args.file) as fh:
        nests = parse_multi(fh.read())
    program = Program(nests=nests, name=args.file)
    strategy = None
    if args.duplicate:
        strategy = Strategy.DUPLICATE
    pplan = plan_program(program, p=args.processors, cost=TRANSPUTER,
                         strategy=strategy,
                         consider_elimination=args.eliminate)
    print(pplan.summary(), file=out)
    scalars = {}
    if args.scalars:
        for part in args.scalars.split(","):
            k, v = part.split("=")
            scalars[k.strip()] = float(v)
    verification = verify_program(pplan, scalars=scalars)
    print(f"phase-parallel == sequential: {verification.ok}", file=out)
    return 0 if verification.ok else 1


def cmd_report(args, out) -> int:
    from repro.report import compile_report

    nest = _load_nest(args)
    scalars = {}
    if args.scalars:
        for part in args.scalars.split(","):
            k, v = part.split("=")
            scalars[k.strip()] = float(v)
    rep = compile_report(nest, p=args.processors,
                         consider_elimination=not args.no_eliminate,
                         scalars=scalars)
    print(rep.render(), file=out)
    ok = rep.verification is None or rep.verification.ok
    return 0 if ok else 1


def cmd_figures(args, out) -> int:
    for fn in (figmod.fig01_l1_dataspaces, figmod.fig02_l1_data_partition,
               figmod.fig03_l1_iteration_partition,
               figmod.fig04_l2_data_partition,
               figmod.fig05_l2_iteration_partition,
               figmod.fig07_l3_reference_graph,
               figmod.fig08_l3_data_partition,
               figmod.fig09_l3_iteration_partition,
               figmod.fig10_l4_processor_assignment):
        print(str(fn()), file=out)
        print(file=out)
    return 0


def cmd_selftest(args, out) -> int:
    from repro.selftest import run_selftest

    failures = run_selftest(out=out)
    return 1 if failures else 0


def cmd_tables(args, out) -> int:
    print("Table I: execution time (s), simulated vs paper", file=out)
    print(format_rows(table1_rows(),
                      ["loop", "p", "M", "simulated_s", "paper_s"]), file=out)
    print(file=out)
    print("Table II: speedup, simulated vs paper", file=out)
    print(format_rows(table2_rows(),
                      ["loop", "p", "M", "simulated_speedup",
                       "paper_speedup"]), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_loop_args(p):
        p.add_argument("file", nargs="?", help="mini-language source file")
        p.add_argument("--loop", help="catalog loop name (L1..L5, ...)")

    def add_strategy_args(p):
        p.add_argument("--duplicate", action="store_true",
                       help="duplicate-data strategy (Theorem 2)")
        p.add_argument("--duplicate-arrays",
                       help="comma-separated arrays to duplicate")
        p.add_argument("--eliminate", action="store_true",
                       help="eliminate redundant computations (Sec. III.C)")

    p = sub.add_parser("analyze", help="reference-pattern analysis")
    add_loop_args(p)
    p.add_argument("--eliminate", action="store_true")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("partition", help="communication-free partition")
    add_loop_args(p)
    add_strategy_args(p)
    p.set_defaults(fn=cmd_partition)

    p = sub.add_parser("transform", help="parallel (forall) form")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("-p", "--processors", type=int, default=0,
                   help="emit SPMD code for this many processors")
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser("verify", help="parallel == sequential check")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("select", help="cost-based strategy selection")
    add_loop_args(p)
    p.add_argument("-p", "--processors", type=int, default=16)
    p.add_argument("--eliminate", action="store_true")
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("program", help="plan + verify a multi-loop program file")
    p.add_argument("file", help="program file (sequence of loop nests)")
    p.add_argument("-p", "--processors", type=int, default=4)
    p.add_argument("--duplicate", action="store_true",
                   help="force the duplicate strategy for every phase")
    p.add_argument("--eliminate", action="store_true",
                   help="let the per-phase selector consider elimination")
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.set_defaults(fn=cmd_program)

    p = sub.add_parser("report", help="full pipeline report for one loop")
    add_loop_args(p)
    p.add_argument("-p", "--processors", type=int, default=16)
    p.add_argument("--no-eliminate", action="store_true",
                   help="skip the redundancy-elimination comparison")
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("figures", help="regenerate Figures 1-10")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("tables", help="regenerate Tables I-II")
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("selftest",
                       help="re-check every paper claim (PASS/FAIL per claim)")
    p.set_defaults(fn=cmd_selftest)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
