"""Command-line compiler driver.

    python -m repro analyze   <file|--loop L1>         reference analysis
    python -m repro partition <file|--loop L1> [...]   partition + render
    python -m repro transform <file|--loop L4> [...]   parallel form
    python -m repro verify    <file|--loop L1> [...]   end-to-end check
    python -m repro select    <file|--loop L5> -p 16   strategy selection
    python -m repro audit     <file|--loop L1> [...]   communication audit
    python -m repro chaos     [--crash-prob 0.2 ...]   fault-injected run
    python -m repro perf      [--check]                perf history + SLO gate
    python -m repro blackbox  [FILE]                   post-mortem flight dump
    python -m repro top       [--once]                 live run dashboard
    python -m repro figures                            regenerate Figs. 1-10
    python -m repro tables                             Tables I & II

Loops come from a mini-language source file or the built-in catalog
(``--loop``).  Strategy flags: ``--duplicate`` (all arrays),
``--duplicate-arrays A,B`` (subset), ``--eliminate`` (Section III.C).

Every subcommand runs through the instrumented pass pipeline
(:mod:`repro.pipeline`); add ``--timings`` to print the per-pass timing
table (including plan-cache hit/miss counters with miss reasons).
Observability flags work on every subcommand too: ``--trace FILE``
writes Chrome trace-event JSON (open in chrome://tracing or Perfetto),
``--metrics`` prints Prometheus-style metrics, ``--metrics-out FILE``
writes them to a file (JSON when the name ends in ``.json``),
``--events FILE`` writes a JSON-lines event log, and ``--profile FILE``
runs the sampling profiler over the command and writes collapsed-stack
flamegraph lines (its sample track also merges into ``--trace``
output).  Structured diagnostics (degenerate Psi, partial duplication,
...) go to stderr so stdout stays machine-stable.

Independent of all flags, a bounded flight recorder is always on
(:mod:`repro.obs.flight`): any unhandled failure -- a scheduler that
cannot recover, a collapsed pool, a failed chaos certification, an
unexpected exception -- dumps a ``repro-blackbox-*.json`` post-mortem
that ``repro blackbox`` renders.  ``REPRO_TOP_SNAPSHOT=FILE`` makes
runs publish live snapshots that ``repro top`` tails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    build_reference_graph,
    data_referenced_vectors,
    is_fully_duplicable,
)
from repro.lang import catalog, parse, to_source
from repro.lang.ast import LoopNest
from repro.machine.cost import TRANSPUTER
from repro.mapping import workload_stats
from repro.perf import choose_strategy, table1_rows, table2_rows
from repro.perf.tables import format_rows
from repro.pipeline import PipelineConfig, PipelineContext, run_pipeline
from repro.pipeline.instrument import Instrumentation, use_metrics
from repro.transform import to_pseudocode, to_spmd_pseudocode
from repro.viz import figures as figmod
from repro.viz import render_data_partition, render_iteration_partition


def _finish(ok: bool, reason: str, code: int = 1) -> int:
    """The uniform exit protocol: every subcommand that can fail goes
    through here, so failure always means a non-zero exit *and* a
    one-line ``repro: <reason>`` on stderr (stdout stays machine-stable).
    """
    if ok:
        return 0
    print(f"repro: {reason}", file=sys.stderr)
    return code


def _load_nest(args) -> LoopNest:
    if args.loop:
        fn = catalog.ALL_LOOPS.get(args.loop)
        if fn is None:
            raise SystemExit(
                f"unknown catalog loop {args.loop!r}; available: "
                f"{', '.join(sorted(catalog.ALL_LOOPS))}")
        return fn()
    if not args.file:
        raise SystemExit("give a source file or --loop NAME")
    with open(args.file) as fh:
        return parse(fh.read(), name=args.file)


def _render_diagnostics(ctx: PipelineContext) -> None:
    if ctx.diagnostics:
        print(ctx.diagnostics.render(), file=sys.stderr)


def _compile(args, upto: str) -> PipelineContext:
    """Load the nest and run the pass pipeline up to ``upto``."""
    nest = _load_nest(args)
    config = PipelineConfig.from_cli_args(args)
    ctx = run_pipeline(nest, config, upto=upto)
    _render_diagnostics(ctx)
    return ctx


def _session_from_args(args, nest=None, tracer=None):
    """An :class:`repro.api.Session` wired to the CLI's ambient scopes.

    The session reuses the command's current metrics registry and
    tracer (so ``--trace`` / ``--metrics`` / ``--timings`` see exactly
    what the session does) instead of creating private ones.
    """
    from repro.api import Session
    from repro.obs.metrics import current_registry
    from repro.obs.trace import current_tracer

    nest = nest if nest is not None else _load_nest(args)
    config = PipelineConfig.from_cli_args(args)
    return Session(
        nest,
        strategy=config.strategy,
        backend=getattr(args, "backend", None),
        chaos=getattr(args, "chaos", None),
        eliminate_redundant=config.eliminate_redundant,
        duplicate_arrays=config.duplicate_arrays,
        scalars=config.scalars_dict() or None,
        registry=current_registry(),
        tracer=tracer if tracer is not None else current_tracer(),
    )


def _render_session_diagnostics(session) -> None:
    if session.diagnostics:
        print(session.diagnostics.render(), file=sys.stderr)


def cmd_analyze(args, out) -> int:
    ctx = _compile(args, upto="eliminate-redundancy")
    nest, model = ctx.nest, ctx.model
    print(to_source(nest), file=out)
    print(file=out)
    for name, info in model.arrays.items():
        drvs = [tuple(int(x) for x in d.vector)
                for d in data_referenced_vectors(info)]
        dup = ("fully duplicable"
               if is_fully_duplicable(info, model.space)
               else "partially duplicable")
        print(f"array {name}: H = {info.h!r}", file=out)
        print(f"  references: "
              f"{[r.describe(nest.indices) for r in info.references]}", file=out)
        print(f"  data-referenced vectors: {drvs}", file=out)
        print(f"  {dup}", file=out)
        g = build_reference_graph(model, name)
        for s, d, k in g.edge_names():
            print(f"  edge {s} -> {d} [{k}]", file=out)
    if args.eliminate:
        print(file=out)
        print(ctx.redundancy.summary(), file=out)
    return 0


def cmd_partition(args, out) -> int:
    ctx = _compile(args, upto="partition")
    nest, plan = ctx.nest, ctx.plan
    print(plan.summary(), file=out)
    print(file=out)
    if nest.depth == 2:
        print(render_iteration_partition(plan.blocks,
                                         title="iteration -> block"), file=out)
        for name, dblocks in plan.data_blocks.items():
            info = plan.model.arrays[name]
            if info.rank == 2:
                print(file=out)
                print(render_data_partition(dblocks, title=f"array {name}"),
                      file=out)
    else:
        for b in plan.blocks[:12]:
            print(f"  block {b.index}: base {b.base_point}, "
                  f"{len(b)} iterations", file=out)
        if plan.num_blocks > 12:
            print(f"  ... {plan.num_blocks - 12} more blocks", file=out)
    return 0


def cmd_transform(args, out) -> int:
    ctx = _compile(args, upto="map" if args.processors else "transform")
    tnest = ctx.tnest
    if args.processors:
        print(to_spmd_pseudocode(tnest, ctx.grid), file=out)
        print(file=out)
        print(workload_stats(ctx.assignment).summary(), file=out)
    else:
        print(to_pseudocode(tnest), file=out)
    return 0


def cmd_verify(args, out) -> int:
    with _session_from_args(args) as session:
        report = session.verify()
        _render_session_diagnostics(session)
    print(f"blocks: {report.num_blocks}", file=out)
    print(f"executed iterations: {report.executed_iterations}", file=out)
    print(f"skipped (redundant) computations: "
          f"{report.skipped_computations}", file=out)
    print(f"remote accesses: {report.remote_accesses}", file=out)
    print(f"parallel == sequential: {report.equal}", file=out)
    if report.cross_checked:
        agreed = ", ".join(
            f"{name}:{'ok' if rep.ok else 'FAIL'}"
            for name, rep in sorted(report.cross_checked.items()))
        print(f"backends cross-checked: {agreed}", file=out)
    elif args.backend:
        print(f"backend: {report.backend}", file=out)
    print("OK" if report.ok else "FAILED", file=out)
    return _finish(report.ok, f"verification failed: {report.summary()}")


def cmd_run(args, out) -> int:
    """Execute the partitioned plan in parallel via the Session facade."""
    with _session_from_args(args) as session:
        result = session.run()
        _render_session_diagnostics(session)
    print(result.summary(), file=out)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return _finish(result.ok, f"run failed: {result.summary()}")


def cmd_select(args, out) -> int:
    nest = _load_nest(args)
    result = choose_strategy(nest, args.processors, cost=TRANSPUTER,
                             consider_elimination=args.eliminate)
    print(result.table(), file=out)
    print(f"\nbest: {result.best.label} "
          f"({result.best.blocks} blocks)", file=out)
    return 0


def cmd_program(args, out) -> int:
    from repro.lang import parse_multi
    from repro.program import Program, plan_program, verify_program

    with open(args.file) as fh:
        nests = parse_multi(fh.read())
    program = Program(nests=nests, name=args.file)
    config = PipelineConfig.from_cli_args(args)
    strategy = config.strategy if args.duplicate else None
    pplan = plan_program(program, p=args.processors, cost=TRANSPUTER,
                         strategy=strategy,
                         consider_elimination=config.eliminate_redundant)
    print(pplan.summary(), file=out)
    verification = verify_program(pplan, scalars=config.scalars_dict() or None)
    print(f"phase-parallel == sequential: {verification.ok}", file=out)
    return _finish(verification.ok, "program verification failed: "
                   "phase-parallel != sequential")


def cmd_report(args, out) -> int:
    from repro.report import compile_report

    nest = _load_nest(args)
    config = PipelineConfig.from_cli_args(args)
    rep = compile_report(nest, p=args.processors,
                         consider_elimination=not args.no_eliminate,
                         scalars=config.scalars_dict() or None,
                         config=config)
    print(rep.render(), file=out)
    ok = rep.verification is None or rep.verification.ok
    return _finish(ok, "report verification failed"
                   if rep.verification is None
                   else f"report verification failed: "
                        f"{rep.verification.summary()}")


def cmd_audit(args, out) -> int:
    from repro.obs.audit import inject_violation, render_audit_dashboard
    from repro.obs.trace import Tracer, current_tracer
    from repro.runtime.engine.base import available_backends

    if args.backend in (None, "all"):
        backends: list = available_backends()
    else:
        backends = [args.backend]

    outer = current_tracer()
    with _session_from_args(args) as session:
        plan = session.plan()
        _render_session_diagnostics(session)
        if args.inject_violation:
            plan = inject_violation(plan)
        # the span rollup needs a recording tracer; when the outer one
        # is the null recorder, swap a private one in for just the
        # audit (the plan build above stays untraced, as before)
        tracer = outer if outer.enabled else Tracer(enabled=True)
        session.tracer = tracer
        report = session.audit(plan=plan, backends=backends,
                               run_engines=not args.static)
        spans = tracer.spans
    print(render_audit_dashboard(report, spans=spans), file=out)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return _finish(report.certified,
                   f"audit violation: {report.summary()}")


def cmd_perf(args, out) -> int:
    from repro.obs import history as hist
    from repro.obs import slo as slomod

    n = args.n if args.n else hist.DEFAULT_N
    repeats = args.repeats if args.repeats else hist.DEFAULT_REPEATS
    history_path = args.history or hist.DEFAULT_HISTORY
    baseline_path = args.baseline or hist.DEFAULT_BASELINE

    entry = hist.measure_entry(n=n, repeats=repeats)
    if args.inject_regression:
        # negative control: synthetically degrade the measured entry so
        # the floor gate and the EWMA watchdog demonstrably fire
        entry["speedup"] = {b: round(s * 0.1, 2)
                            for b, s in entry["speedup"].items()}
        if "blocks_per_sec" in entry:
            entry["blocks_per_sec"] = round(
                entry["blocks_per_sec"] * 0.1, 2)
        if "plans_per_sec" in entry.get("serve", {}):
            entry["serve"]["plans_per_sec"] = round(
                entry["serve"]["plans_per_sec"] * 0.001, 2)
    slos = list(slomod.DEFAULT_SLOS)
    slos.extend(slomod.serve_slos())  # committed BENCH_serve.json floors
    if args.slo:
        slos.extend(slomod.load_slos(args.slo))
    slo_results = slomod.evaluate_slos(entry, slos)
    entry["slo"] = slomod.slo_block(slo_results)
    prior = hist.load_history(history_path)
    count = hist.append_history(entry, history_path)
    baseline = hist.load_baseline(baseline_path)
    if baseline is not None and baseline.get("case") != entry["case"]:
        # a different workload size: the committed numbers don't apply
        baseline = None
    floors = (dict((baseline or {}).get("floors") or {}) if baseline
              else ({} if n != hist.DEFAULT_N else dict(hist.DEFAULT_FLOORS)))
    for spec in args.floor or []:
        backend, _, value = spec.partition("=")
        if not value:
            raise SystemExit(f"--floor expects BACKEND=X, got {spec!r}")
        floors[backend.strip()] = float(value)

    print(f"perf: {entry['case']} (n={entry['n']}, "
          f"repeats={entry['repeats']}) -> {history_path} "
          f"(entry {count})", file=out)
    if baseline is None:
        print(f"no baseline at {baseline_path}; deltas omitted", file=out)
    print(hist.render_perf_table(entry, baseline, floors), file=out)
    violated = [r for r in slo_results if not r.ok]
    if args.check or violated:
        for r in slo_results:
            print(f"slo {r.describe()}", file=out)
    if args.check:
        floor_failures = hist.check_floors(entry, floors)
        failures = list(floor_failures)
        failures += [f"SLO {r.describe()}" for r in violated]
        wd = slomod.watchdog(prior, entry)
        if wd:
            failures += [f"watchdog {w}" for w in wd]
        else:
            same_case = sum(1 for h in prior
                            if h.get("case") == entry["case"])
            engaged = same_case >= slomod.MIN_HISTORY
            hint = "" if engaged else f", engages at {slomod.MIN_HISTORY}"
            print(f"regression watchdog: {'PASS' if engaged else 'idle'} "
                  f"({same_case} prior same-case runs{hint})", file=out)
        if failures:
            print("perf regression: " + "; ".join(failures), file=out)
            # keep the historical stderr prefix when a floor is what
            # broke -- shell pipelines grep for "perf below floor:"
            prefix = ("perf below floor: " if floor_failures
                      else "perf regression: ")
            return _finish(False, prefix + "; ".join(failures))
        print("perf floors: PASS", file=out)
    return 0


def cmd_serve(args, out) -> int:
    """The serving daemon: start/stop/status plus one-shot submit."""
    import json as jsonmod

    from repro.serve import daemon as dmod

    socket_path = args.socket or dmod.default_socket_path()
    if args.action == "start":
        if args.foreground:
            dmod.run_daemon(socket_path,
                            max_concurrency=args.concurrency,
                            queue_limit=args.queue_limit)
            return 0
        try:
            pid = dmod.spawn_daemon(socket_path,
                                    max_concurrency=args.concurrency,
                                    queue_limit=args.queue_limit)
        except RuntimeError as exc:
            return _finish(False, str(exc))
        print(f"serve: daemon pid {pid} listening on {socket_path}",
              file=out)
        return 0
    if args.action == "stop":
        if dmod.stop_daemon(socket_path):
            print("serve: stopped", file=out)
            return 0
        return _finish(False, f"no daemon at {socket_path}")

    from repro.serve.client import ServeClient, ServeError

    try:
        client = ServeClient(socket_path)
    except (ConnectionError, OSError) as exc:
        return _finish(False,
                       f"cannot reach daemon at {socket_path}: {exc}")
    with client:
        if args.action == "status":
            print(jsonmod.dumps(client.status(), indent=2, sort_keys=True),
                  file=out)
            return 0
        # submit: one request over the wire, payload to stdout
        if args.loop:
            nest = args.loop
        elif args.file:
            with open(args.file) as fh:
                nest = fh.read()
        else:
            raise SystemExit("give a source file or --loop NAME")
        config = PipelineConfig.from_cli_args(args)
        fields = dict(
            nest=nest,
            strategy=config.strategy.value,
            eliminate_redundant=config.eliminate_redundant,
            backend=getattr(args, "backend", None),
            scalars=config.scalars_dict() or None,
        )
        if config.duplicate_arrays is not None:
            fields["duplicate_arrays"] = tuple(sorted(
                config.duplicate_arrays))
        try:
            result = client.request(args.op, **fields)
        except ServeError as exc:
            return _finish(False, exc.response.reason())
        print(jsonmod.dumps(result, indent=2, sort_keys=True), file=out)
        return 0 if result.get("ok", True) else _finish(
            False, f"serve {args.op} failed")


def cmd_chaos(args, out) -> int:
    """Fault-injected multiprocess run + recovery certification.

    Runs the plan on the multiprocess engine under a
    :class:`~repro.runtime.scheduler.FaultPlan`, prints the ASCII lease
    timeline, and certifies recovery three ways: the scheduler
    recovered every unit, the merged arrays and write stamps are
    bit-identical to an undisturbed interpreter run, and the static
    audit still certifies zero cross-block accesses.
    """
    from dataclasses import replace as _replace

    from repro.core import Strategy, build_plan
    from repro.machine.memory import RemoteAccessError
    from repro.obs.audit import audit_plan, inject_violation
    from repro.obs.history import matmul_nest
    from repro.runtime.arrays import make_arrays
    from repro.runtime.merge import merge_copies
    from repro.runtime.parallel import _run_parallel
    from repro.runtime.scheduler import (FaultPlan, SchedulerError,
                                         render_timeline)

    # -- the fault plan: --chaos spec, overridden by convenience flags ----
    fp = FaultPlan.parse(args.chaos) or FaultPlan()
    overrides = {}
    for key in ("crash_prob", "slow_prob", "slow_ms", "drop_prob", "seed"):
        value = getattr(args, key)
        if value is not None:
            overrides[key] = value
    if overrides:
        fp = _replace(fp, **overrides)
    if not fp.active:
        fp = _replace(fp, crash_prob=0.2)  # bare `repro chaos` still bites

    # -- the plan ---------------------------------------------------------
    if args.file or args.loop:
        ctx = _compile(args, upto="partition")
        plan = ctx.plan
    else:
        nest = matmul_nest(args.matmul)
        plan = build_plan(nest, strategy=Strategy.DUPLICATE)
    if args.inject_violation:
        plan = inject_violation(plan)

    print(f"chaos: {fp.describe()} on {plan.nest.name or '<anon>'} "
          f"({len(plan.blocks)} blocks, multiprocess engine)", file=out)

    # -- the runs: undisturbed interp golden, then chaos ------------------
    initial = make_arrays(plan.model)
    try:
        golden = _run_parallel(plan, initial=initial, backend="interp")
        res = _run_parallel(plan, initial=initial, backend="multiprocess",
                            chaos=fp)
    except SchedulerError as exc:
        return _finish(False, f"chaos non-recovery: {exc}")
    except RemoteAccessError as exc:
        return _finish(False, f"remote access under chaos: {exc}")

    sres = res.scheduler
    print(file=out)
    if sres is not None:
        print(render_timeline(sres), file=out)
    else:
        # the engine degraded to an in-process tier; nothing was leased
        print("no scheduler ran (pool unavailable; degraded in-process)",
              file=out)

    # -- certification ----------------------------------------------------
    stamps_ok = res.write_stamps == golden.write_stamps
    counters_ok = (res.executed_iterations == golden.executed_iterations
                   and res.skipped_computations
                   == golden.skipped_computations)
    merged = merge_copies(res, initial)
    merged_golden = merge_copies(golden, initial)
    arrays_ok = all(merged[n] == merged_golden[n] for n in merged_golden)
    audit = audit_plan(plan, run_engines=False)

    print(file=out)
    print(f"recovered:            "
          f"{'yes' if sres is None or sres.recovered else 'NO'}", file=out)
    print(f"arrays vs interp:     "
          f"{'bit-identical' if arrays_ok else 'MISMATCH'}", file=out)
    print(f"write stamps:         "
          f"{'bit-identical' if stamps_ok else 'MISMATCH'}", file=out)
    print(f"counters:             "
          f"{'bit-identical' if counters_ok else 'MISMATCH'}", file=out)
    print(f"audit:                {audit.summary()}", file=out)

    if args.json:
        import json

        doc = {
            "chaos": fp.describe(),
            "scheduler": sres.to_json() if sres is not None else None,
            "arrays_ok": arrays_ok, "stamps_ok": stamps_ok,
            "counters_ok": counters_ok, "audit_ok": audit.ok,
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    from repro.obs.flight import dump_blackbox

    if sres is not None and not sres.recovered:
        dump_blackbox("chaos certification failed: units missing",
                      extra={"scheduler": sres.to_json()})
        return _finish(False, "chaos non-recovery: "
                              f"{sres.units - sres.completed_units} "
                              "unit(s) never completed")
    if not (arrays_ok and stamps_ok and counters_ok):
        dump_blackbox("chaos certification failed: result mismatch",
                      extra={"scheduler": sres.to_json()
                             if sres is not None else None})
        return _finish(False, "chaos run is not bit-identical to the "
                              "interp golden run")
    return _finish(audit.ok, f"audit violation: {audit.summary()}")


def cmd_blackbox(args, out) -> int:
    """Render a flight-recorder post-mortem dump (newest by default)."""
    import json

    from repro.obs.flight import (latest_blackbox, load_blackbox,
                                  render_blackbox)

    path = args.file or latest_blackbox(args.dir)
    if path is None:
        where = args.dir or "the current directory"
        return _finish(False, f"no repro-blackbox-*.json dumps in {where}")
    try:
        doc = load_blackbox(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return _finish(False, f"cannot read blackbox {path}: {exc}")
    print(f"file: {path}", file=out)
    print(render_blackbox(doc, last=args.last), file=out)
    return 0


def cmd_top(args, out) -> int:
    """Tail a run's live snapshot file as an ASCII dashboard."""
    from repro.obs.top import run_top

    return run_top(path=args.snapshot,
                   interval_s=args.interval,
                   iterations=1 if args.once else args.iterations,
                   out=out)


def cmd_figures(args, out) -> int:
    for fn in (figmod.fig01_l1_dataspaces, figmod.fig02_l1_data_partition,
               figmod.fig03_l1_iteration_partition,
               figmod.fig04_l2_data_partition,
               figmod.fig05_l2_iteration_partition,
               figmod.fig07_l3_reference_graph,
               figmod.fig08_l3_data_partition,
               figmod.fig09_l3_iteration_partition,
               figmod.fig10_l4_processor_assignment):
        print(str(fn()), file=out)
        print(file=out)
    return 0


def cmd_selftest(args, out) -> int:
    from repro.selftest import run_selftest

    failures = run_selftest(out=out)
    return _finish(not failures, f"selftest: {failures} claim(s) failed")


def cmd_tables(args, out) -> int:
    print("Table I: execution time (s), simulated vs paper", file=out)
    print(format_rows(table1_rows(),
                      ["loop", "p", "M", "simulated_s", "paper_s"]), file=out)
    print(file=out)
    print("Table II: speedup, simulated vs paper", file=out)
    print(format_rows(table2_rows(),
                      ["loop", "p", "M", "simulated_speedup",
                       "paper_speedup"]), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-V", "--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_loop_args(p):
        p.add_argument("file", nargs="?", help="mini-language source file")
        p.add_argument("--loop", help="catalog loop name (L1..L5, ...)")

    def add_strategy_args(p):
        p.add_argument("--duplicate", action="store_true",
                       help="duplicate-data strategy (Theorem 2)")
        p.add_argument("--duplicate-arrays",
                       help="comma-separated arrays to duplicate")
        p.add_argument("--eliminate", action="store_true",
                       help="eliminate redundant computations (Sec. III.C)")

    def add_subparser(name, **kwargs):
        p = sub.add_parser(name, **kwargs)
        p.add_argument("--timings", action="store_true",
                       help="print the per-pass timing table")
        p.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace-event JSON "
                            "(chrome://tracing / Perfetto) for this command")
        p.add_argument("--metrics", action="store_true",
                       help="print Prometheus-style metrics after the "
                            "command output")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write metrics to FILE (.json for JSON, "
                            "anything else for Prometheus text)")
        p.add_argument("--events", metavar="FILE",
                       help="write a JSON-lines structured event log")
        p.add_argument("--profile", metavar="FILE",
                       help="sample wall time over this command and write "
                            "collapsed-stack flamegraph lines to FILE "
                            "(also prints the per-subsystem table)")
        return p

    p = add_subparser("analyze", help="reference-pattern analysis")
    add_loop_args(p)
    p.add_argument("--eliminate", action="store_true")
    p.set_defaults(fn=cmd_analyze)

    p = add_subparser("partition", help="communication-free partition")
    add_loop_args(p)
    add_strategy_args(p)
    p.set_defaults(fn=cmd_partition)

    p = add_subparser("transform", help="parallel (forall) form")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("-p", "--processors", type=int, default=0,
                   help="emit SPMD code for this many processors")
    p.set_defaults(fn=cmd_transform)

    p = add_subparser("verify", help="parallel == sequential check")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.add_argument("--backend",
                   help="execution engine: interp, compiled, codegen, "
                        "vectorized, multiprocess, auto, or 'all' to "
                        "cross-check every available backend")
    p.add_argument("--chaos", metavar="SPEC",
                   help="fault-injection spec scoped over the run, e.g. "
                        "'crash-prob=0.2,seed=7' (multiprocess backend)")
    p.set_defaults(fn=cmd_verify)

    p = add_subparser("run", help="execute the plan (Session facade)")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.add_argument("--backend",
                   help="execution engine: interp, compiled, codegen, "
                        "vectorized, multiprocess, auto")
    p.add_argument("--chaos", metavar="SPEC",
                   help="fault-injection spec scoped over the run, e.g. "
                        "'crash-prob=0.2,seed=7' (multiprocess backend)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the run result as JSON")
    p.set_defaults(fn=cmd_run)

    p = add_subparser("serve",
                      help="async batch-serving daemon (unix socket)")
    p.add_argument("action", choices=["start", "stop", "status", "submit"],
                   help="start/stop the daemon, query it, or submit "
                        "one request")
    p.add_argument("--socket", metavar="PATH",
                   help="unix socket path (default $REPRO_SERVE_SOCKET "
                        "or <cache-root>/serve.sock)")
    p.add_argument("--foreground", action="store_true",
                   help="start: run in the foreground instead of "
                        "daemonizing")
    p.add_argument("--concurrency", type=int, default=4,
                   help="start: executor width (default 4)")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="start: admitted-request bound beyond the "
                        "executing ones (default 32)")
    p.add_argument("--op", default="verify",
                   choices=["plan", "run", "verify", "audit"],
                   help="submit: the operation (default verify)")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.add_argument("--backend",
                   help="execution engine for submitted run/verify ops")
    p.set_defaults(fn=cmd_serve)

    p = add_subparser("select", help="cost-based strategy selection")
    add_loop_args(p)
    p.add_argument("-p", "--processors", type=int, default=16)
    p.add_argument("--eliminate", action="store_true")
    p.set_defaults(fn=cmd_select)

    p = add_subparser("program",
                      help="plan + verify a multi-loop program file")
    p.add_argument("file", help="program file (sequence of loop nests)")
    p.add_argument("-p", "--processors", type=int, default=4)
    p.add_argument("--duplicate", action="store_true",
                   help="force the duplicate strategy for every phase")
    p.add_argument("--eliminate", action="store_true",
                   help="let the per-phase selector consider elimination")
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.set_defaults(fn=cmd_program)

    p = add_subparser("report", help="full pipeline report for one loop")
    add_loop_args(p)
    p.add_argument("-p", "--processors", type=int, default=16)
    p.add_argument("--no-eliminate", action="store_true",
                   help="skip the redundancy-elimination comparison")
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.add_argument("--backend",
                   help="execution engine for the verification run")
    p.set_defaults(fn=cmd_report)

    p = add_subparser("audit",
                      help="communication-freedom audit + ASCII dashboard")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--scalars", help="bindings, e.g. 'D=2,F=3'")
    p.add_argument("--backend",
                   help="engine to reconcile against the static replay "
                        "(default: 'all' available backends)")
    p.add_argument("--static", action="store_true",
                   help="static replay only; skip the engine runs")
    p.add_argument("--inject-violation", action="store_true",
                   help="audit a deliberately broken variant of the plan "
                        "(exercises the violation path; exits non-zero)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the audit report as JSON")
    p.set_defaults(fn=cmd_audit)

    p = add_subparser("perf",
                      help="measure engine speedups into the perf history")
    p.add_argument("--n", type=int, default=None,
                   help="matmul size (default: the baseline's)")
    p.add_argument("--repeats", type=int, default=None,
                   help="best-of repetitions per backend (default 3)")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="JSON-lines history file "
                        "(default BENCH_history.jsonl)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="committed baseline (default BENCH_engine.json)")
    p.add_argument("--floor", action="append", metavar="BACKEND=X",
                   help="override a speedup floor (repeatable)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when a backend regresses below "
                        "its floor, an SLO is violated, or the EWMA "
                        "watchdog flags a drop against the history")
    p.add_argument("--slo", metavar="FILE",
                   help="extra SLO specs (JSON list of "
                        "name/metric/kind/threshold objects)")
    p.add_argument("--inject-regression", action="store_true",
                   help="synthetically degrade the measured entry "
                        "(negative control: --check must then fail)")
    p.set_defaults(fn=cmd_perf)

    p = add_subparser("chaos",
                      help="fault-injected run + ASCII lease timeline "
                           "+ recovery certification")
    add_loop_args(p)
    add_strategy_args(p)
    p.add_argument("--matmul", type=int, default=12, metavar="N",
                   help="run the NxNxN matmul workload when no "
                        "file/--loop is given (default 12)")
    p.add_argument("--chaos", metavar="SPEC",
                   help="full fault-plan spec, e.g. "
                        "'crash-prob=0.2,drop-prob=0.1,seed=7'")
    p.add_argument("--crash-prob", type=float, default=None,
                   help="per-lease worker-crash probability")
    p.add_argument("--slow-prob", type=float, default=None,
                   help="per-lease slow-worker probability")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="delay for slow leases, milliseconds")
    p.add_argument("--drop-prob", type=float, default=None,
                   help="per-lease lost-result probability")
    p.add_argument("--seed", type=int, default=None,
                   help="fault-plan seed (runs are deterministic per seed)")
    p.add_argument("--inject-violation", action="store_true",
                   help="chaos on a deliberately broken plan (must abort "
                        "with a remote access; exits non-zero)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the scheduler timeline + verdicts "
                        "as JSON")
    p.set_defaults(fn=cmd_chaos)

    p = add_subparser("blackbox",
                      help="render a flight-recorder post-mortem dump")
    p.add_argument("file", nargs="?",
                   help="dump file (default: newest repro-blackbox-*.json)")
    p.add_argument("--dir", metavar="DIR",
                   help="directory to search for dumps "
                        "(default: $REPRO_BLACKBOX_DIR or the cwd)")
    p.add_argument("--last", type=int, default=40, metavar="N",
                   help="ring entries to show (default 40)")
    p.set_defaults(fn=cmd_blackbox)

    p = add_subparser("top",
                      help="live ASCII dashboard over a run's snapshot "
                           "file (set REPRO_TOP_SNAPSHOT on the run)")
    p.add_argument("--snapshot", metavar="FILE",
                   help="snapshot path (default: $REPRO_TOP_SNAPSHOT "
                        "or .repro-top.json)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh interval in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="render N frames then exit (default: forever)")
    p.set_defaults(fn=cmd_top)

    p = add_subparser("figures", help="regenerate Figures 1-10")
    p.set_defaults(fn=cmd_figures)

    p = add_subparser("tables", help="regenerate Tables I-II")
    p.set_defaults(fn=cmd_tables)

    p = add_subparser("selftest",
                      help="re-check every paper claim (PASS/FAIL per claim)")
    p.set_defaults(fn=cmd_selftest)

    return parser


def _invoke(args, out) -> int:
    """Run one subcommand under the flight recorder's crash net.

    Any exception that would escape the driver dumps the flight ring
    first (``repro blackbox`` then has the post-mortem), and still
    propagates -- the dump documents the failure, it never masks it.
    """
    from repro.obs.flight import dump_blackbox, flight

    fr = flight()
    fr.record("event", "cli.start", command=args.command)
    try:
        return args.fn(args, out)
    except (SystemExit, KeyboardInterrupt):
        raise
    except BrokenPipeError:
        # downstream reader (e.g. `| head`) closed our stdout early:
        # not a failure of ours, so no blackbox, no traceback -- mirror
        # the conventional 128+SIGPIPE exit (the __main__ shim redirects
        # the real fd so the interpreter's shutdown flush stays quiet)
        return 141
    except Exception as exc:
        fr.error(f"cli.{args.command}", exc)
        dump_blackbox(
            f"unhandled {type(exc).__name__} in repro {args.command}: {exc}")
        raise


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    out = out or sys.stdout
    trace_path = getattr(args, "trace", None)
    events_path = getattr(args, "events", None)
    metrics_flag = getattr(args, "metrics", False)
    metrics_out = getattr(args, "metrics_out", None)
    timings = getattr(args, "timings", False)
    profile_path = getattr(args, "profile", None)
    if not (trace_path or events_path or metrics_flag or metrics_out
            or timings or profile_path):
        return _invoke(args, out)

    import json

    from repro.obs import (MetricsRegistry, Tracer, prometheus_text,
                           use_registry, use_tracer, write_event_log,
                           write_metrics)
    from repro.obs.export import chrome_trace
    from repro.obs.hooks import TracingHooks
    from repro.obs.profile import SamplingProfiler

    # fresh sinks so every dump covers exactly this command; the tracer
    # stays the null recorder unless a trace/event file was requested
    instr = Instrumentation()
    registry = MetricsRegistry()
    tracer = Tracer(enabled=bool(trace_path or events_path))
    if tracer.enabled:
        instr.add_hooks(TracingHooks(tracer))
    profiler = SamplingProfiler() if profile_path else None
    with use_metrics(instr), use_registry(registry), use_tracer(tracer):
        if profiler is not None:
            profiler.start()
        try:
            with tracer.span(f"cli.{args.command}", category="cli") as sp:
                code = _invoke(args, out)
                sp.set(exit_code=code)
        finally:
            if profiler is not None:
                profiler.stop()
                profiler.publish(registry)
    if timings:
        print(file=out)
        print(instr.timing_table(), file=out)
    if profiler is not None:
        profiler.write_collapsed(profile_path)
        print(file=out)
        print(profiler.report(), file=out)
        print(f"profile: {profiler.sample_count} samples -> {profile_path} "
              f"(collapsed stacks; feed to any flamegraph renderer)",
              file=out)
    if metrics_flag:
        print(file=out)
        print(prometheus_text(registry), file=out)
    if metrics_out:
        write_metrics(registry, metrics_out)
    if trace_path:
        doc = chrome_trace(tracer)
        if profiler is not None:
            # the sampler's instants ride along on their own track
            doc["traceEvents"].extend(profiler.chrome_events(tracer.pid))
        with open(trace_path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    if events_path:
        write_event_log(tracer, events_path)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
