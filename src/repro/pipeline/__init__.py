"""The instrumented pass pipeline.

The compiler's stages run as named, registered passes over a
:class:`~repro.pipeline.context.PipelineContext`:

- :mod:`~repro.pipeline.passes`: the :class:`PassManager`, the six
  standard passes (``extract-refs`` ... ``map``) plus ``verify``, and
  :func:`run_pipeline`, the shared entry point behind ``build_plan``,
  the CLI, ``report.py``, ``selftest.py``, the strategy selector and
  the program planner;
- :mod:`~repro.pipeline.context`: :class:`PipelineConfig` (the one
  source of truth for strategy/duplication/elimination flags) and the
  artifact-carrying context;
- :mod:`~repro.pipeline.instrument`: per-pass wall-time/call counters,
  the event-hook protocol, and the ``--timings`` table;
- :mod:`~repro.pipeline.diagnostics`: structured
  ``Diagnostic(severity, code, message, loc)`` records;
- :mod:`~repro.pipeline.cache`: the content-addressed plan cache
  (in-memory LRU + optional on-disk store) keyed by
  :mod:`repro.lang.fingerprint`.
"""

from repro.pipeline.cache import (
    PLAN_CACHE,
    MissReason,
    PlanCache,
    configure_plan_cache,
)
from repro.pipeline.context import PipelineConfig, PipelineContext
from repro.pipeline.diagnostics import Diagnostic, DiagnosticBag, Severity
from repro.pipeline.instrument import (
    PIPELINE_METRICS,
    Instrumentation,
    PassStats,
    PipelineHooks,
)
from repro.pipeline.passes import (
    DEFAULT_MANAGER,
    STANDARD_PASSES,
    Pass,
    PassManager,
    PassOrderError,
    PipelineError,
    UnknownPassError,
    default_manager,
    run_pipeline,
)

__all__ = [
    "Pass",
    "PassManager",
    "PassOrderError",
    "PipelineError",
    "UnknownPassError",
    "STANDARD_PASSES",
    "DEFAULT_MANAGER",
    "default_manager",
    "run_pipeline",
    "PipelineConfig",
    "PipelineContext",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "Instrumentation",
    "PassStats",
    "PipelineHooks",
    "PIPELINE_METRICS",
    "PlanCache",
    "PLAN_CACHE",
    "MissReason",
    "configure_plan_cache",
]
