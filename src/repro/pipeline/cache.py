"""Content-addressed plan cache: in-memory LRU + optional disk store.

Plans are keyed by the canonical nest fingerprint
(:mod:`repro.lang.fingerprint`) plus the strategy/duplication/
elimination triple, so repeated ``build_plan``/CLI/benchmark invocations
on structurally identical nests are near-free.  Hit/miss counts are
surfaced through the instrumentation layer (``counter cache.hit`` /
``cache.miss`` in the ``--timings`` table), and misses carry a
clcache-style reason breakdown (:class:`MissReason`: new fingerprint
vs. options change vs. eviction) as ``cache.miss.<reason>`` counters.

The disk store (one pickle per key under a directory, enabled via the
``REPRO_PLAN_CACHE_DIR`` environment variable or
:func:`configure_plan_cache`) follows the clcache model: content hash
in, artifact out, corrupt or unreadable entries treated as misses.  It
runs on the shared :class:`repro.pipeline.diskstore.DiskStore`
skeleton -- flock'd sidecar lock, ``manifest.json`` with a logical
access clock, tmp + ``os.replace`` writes, byte-cap LRU eviction
(``REPRO_PLAN_CACHE_MB``, default 64) -- so concurrent daemon workers
sharing one plan directory cannot corrupt it.  Directories written by
the pre-manifest format are adopted in place: a ``*.plan`` file with
no manifest entry still hits and gains an entry.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from collections import OrderedDict
from typing import Any, Optional

from repro.lang.fingerprint import plan_cache_key
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer
from repro.pipeline.diskstore import DiskStore
from repro.pipeline.instrument import Instrumentation

HIT_COUNTER = "cache.hit"
MISS_COUNTER = "cache.miss"
EVICT_COUNTER = "cache.evict"

#: Byte cap for the on-disk plan store, in MiB.
DISK_MB_ENV_VAR = "REPRO_PLAN_CACHE_MB"
DEFAULT_DISK_CAP_MB = 64


def cache_root():
    """The per-user root for repro's on-disk caches.

    ``$XDG_CACHE_HOME/repro`` when set, else ``~/.cache/repro``.  Each
    cache claims a subdirectory (the codegen kernel cache uses
    ``codegen/``); the plan cache keeps its explicitly configured
    ``REPRO_PLAN_CACHE_DIR`` for compatibility.
    """
    from pathlib import Path

    env = os.environ.get("XDG_CACHE_HOME")
    base = Path(env) if env else Path.home() / ".cache"
    return base / "repro"


class MissReason:
    """Why a lookup missed (the clcache-style breakdown).

    - ``NEW_FINGERPRINT``: this nest structure was never compiled here;
    - ``OPTIONS_CHANGE``: the nest was seen before, but under different
      strategy/duplication/elimination options;
    - ``EVICTED``: the exact key was cached once and fell out of the LRU.
    """

    NEW_FINGERPRINT = "new-fingerprint"
    OPTIONS_CHANGE = "options-change"
    EVICTED = "evicted"

    ALL = (NEW_FINGERPRINT, OPTIONS_CHANGE, EVICTED)


def _detach(plan: Any) -> Any:
    """Return a plan whose mutable containers are private copies.

    The blocks/data blocks themselves are frozen dataclasses over tuples
    and frozensets, so copying the top-level ``blocks`` list, the
    ``data_blocks`` dict-of-lists and the ``_block_of`` index is enough
    to isolate cached entries from callers that rewrite container slots
    (e.g. the sabotage-style negative tests).
    """
    if not hasattr(plan, "blocks") and hasattr(plan, "plan"):
        # wrapper carrying the plan (e.g. the pipeline's cached-result
        # record): detach the plan inside, keep the rest shared
        return dataclasses.replace(plan, plan=_detach(plan.plan))
    return dataclasses.replace(
        plan,
        blocks=list(plan.blocks),
        data_blocks={name: list(dbs)
                     for name, dbs in plan.data_blocks.items()},
        _block_of=dict(plan._block_of),
    )


class PlanCache:
    """LRU cache of :class:`~repro.core.plan.PartitionPlan` objects.

    Stored and served plans are detached at the container level (see
    :func:`_detach`): hits never alias a previously returned plan's
    mutable lists/dicts, so no caller can corrupt the cache.
    """

    def __init__(self, maxsize: int = 256,
                 directory: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.directory = directory
        self._disk: Optional[DiskStore] = None
        self._store: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: miss-reason name -> count (see :class:`MissReason`)
        self.miss_reasons: dict[str, int] = {r: 0 for r in MissReason.ALL}
        self._fingerprints: set = set()   # every fingerprint ever stored
        self._evicted: set = set()        # keys dropped by the LRU

    # -- keys -------------------------------------------------------------
    @staticmethod
    def key_for(nest, config) -> tuple:
        strategy_value, dup, elim = config.cache_key_parts()
        return plan_cache_key(nest, strategy_value,
                              duplicate_arrays=dup,
                              eliminate_redundant=elim)

    # -- lookup -----------------------------------------------------------
    def _classify_miss(self, key: tuple) -> str:
        if key in self._evicted:
            return MissReason.EVICTED
        if key[0] in self._fingerprints:
            return MissReason.OPTIONS_CHANGE
        return MissReason.NEW_FINGERPRINT

    def get(self, key: tuple,
            instrumentation: Optional[Instrumentation] = None) -> Any:
        with current_tracer().span("cache.lookup", category="cache") as sp:
            plan = self._store.get(key)
            if plan is None and self.directory is not None:
                plan = self._disk_read(key)
                if plan is not None:
                    self._remember(key, plan)
            if plan is not None:
                self._store.move_to_end(key)
                self.hits += 1
                sp.set(outcome="hit")
                if instrumentation is not None:
                    instrumentation.count(HIT_COUNTER)
                else:
                    current_registry().inc(HIT_COUNTER)
                return _detach(plan)
            reason = self._classify_miss(key)
            self.misses += 1
            self.miss_reasons[reason] += 1
            sp.set(outcome="miss", reason=reason)
            if instrumentation is not None:
                instrumentation.count(MISS_COUNTER)
                instrumentation.count(f"{MISS_COUNTER}.{reason}")
            else:
                current_registry().inc(MISS_COUNTER)
                current_registry().inc(f"{MISS_COUNTER}.{reason}")
            return None

    def put(self, key: tuple, plan: Any,
            instrumentation: Optional[Instrumentation] = None) -> None:
        plan = _detach(plan)
        self._fingerprints.add(key[0])
        self._evicted.discard(key)
        self._remember(key, plan, instrumentation)
        if self.directory is not None:
            self._disk_write(key, plan)

    def _remember(self, key: tuple, plan: Any,
                  instrumentation: Optional[Instrumentation] = None) -> None:
        self._store[key] = plan
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            dropped, _ = self._store.popitem(last=False)
            self._evicted.add(dropped)
            self.evictions += 1
            if instrumentation is not None:
                instrumentation.count(EVICT_COUNTER)
            else:
                current_registry().inc(EVICT_COUNTER)

    # -- disk store -------------------------------------------------------
    def _stem_for(self, key: tuple) -> str:
        fingerprint, strategy, dup, elim = key
        dup_tag = "all" if dup is None else "-".join(dup) or "none"
        return f"{fingerprint}.{strategy}.{dup_tag}.{int(elim)}"

    def _diskstore(self) -> Optional[DiskStore]:
        """The lock-safe store for :attr:`directory` (lazy, best-effort)."""
        if self.directory is None:
            return None
        store = self._disk
        if store is None or str(store.root) != str(self.directory):
            try:
                cap = int(float(os.environ.get(
                    DISK_MB_ENV_VAR, DEFAULT_DISK_CAP_MB)) * 1024 * 1024)
                store = self._disk = DiskStore(self.directory, cap_bytes=cap)
            except (OSError, ValueError):
                return None  # unwritable directory: memory cache only
        return store

    def _disk_read(self, key: tuple) -> Any:
        store = self._diskstore()
        if store is None:
            return None
        stem = self._stem_for(key)
        try:
            with store.locked():
                m = store.read_manifest()
                try:
                    plan = pickle.loads(store.read_file(f"{stem}.plan"))
                except (OSError, pickle.PickleError, EOFError,
                        AttributeError):
                    if stem in m["entries"]:
                        del m["entries"][stem]
                        store.remove(stem, (".plan",))
                        store.write_manifest(m)
                    return None
                if stem in m["entries"]:
                    store.touch(m, stem)
                else:
                    # pre-manifest directory: adopt the entry in place
                    nbytes = (store.root / f"{stem}.plan").stat().st_size
                    store.record(m, stem, nbytes)
                store.write_manifest(m)
                return plan
        except OSError:
            return None

    def _disk_write(self, key: tuple, plan: Any) -> None:
        store = self._diskstore()
        if store is None:
            return
        stem = self._stem_for(key)
        try:
            blob = pickle.dumps(plan)
            with store.locked():
                m = store.read_manifest()
                store.write_file(f"{stem}.plan", blob)
                store.record(m, stem, len(blob))
                evicted = store.evict_lru(m, (".plan",), protect=(stem,))
                store.write_manifest(m)
            reg = current_registry()
            reg.inc("cache.plan.disk.store")
            for _ in evicted:
                reg.inc("cache.plan.disk.evict")
            reg.set("cache.plan.disk.bytes", store.total_bytes(m))
        except (OSError, pickle.PickleError):
            pass  # disk store is best-effort; memory cache still works

    # -- management -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._store.clear()
        self.hits = self.misses = self.evictions = 0
        self.miss_reasons = {r: 0 for r in MissReason.ALL}
        self._fingerprints.clear()
        self._evicted.clear()


#: Process-wide default used by ``build_plan`` and the CLI.
PLAN_CACHE = PlanCache(
    maxsize=int(os.environ.get("REPRO_PLAN_CACHE_SIZE", "256")),
    directory=os.environ.get("REPRO_PLAN_CACHE_DIR") or None,
)


def configure_plan_cache(maxsize: Optional[int] = None,
                         directory: Optional[str] = None) -> PlanCache:
    """Reconfigure the global cache (drops current entries)."""
    global PLAN_CACHE
    PLAN_CACHE = PlanCache(
        maxsize=maxsize if maxsize is not None else PLAN_CACHE.maxsize,
        directory=directory,
    )
    return PLAN_CACHE
