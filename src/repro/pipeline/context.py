"""Pipeline configuration and the artifact-carrying context.

:class:`PipelineConfig` is the single source of truth for the
strategy/duplication/elimination flags that the CLI, ``report.py``,
``selftest.py``, the strategy selector and the program planner all used
to plumb independently.  :class:`PipelineContext` carries the artifacts
one compilation produces (reference model, redundancy analysis, space
breakdown, partition plan, transformed nest, processor assignment)
between registered passes, together with diagnostics and
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Optional

from repro.core.strategy import Strategy
from repro.pipeline.diagnostics import DiagnosticBag
from repro.pipeline.instrument import Instrumentation, current_metrics


@dataclass(frozen=True)
class PipelineConfig:
    """Everything a pipeline run varies on, in one hashable record.

    ``duplicate_arrays=None`` under the duplicate strategy means "all
    arrays" (the Theorem 2/4 default), matching ``partitioning_space``.
    ``processors`` only matters for the ``map`` pass; ``scalars`` only
    for the ``verify`` pass; neither affects the partition itself (or
    the cache key).
    """

    strategy: Strategy = Strategy.NONDUPLICATE
    duplicate_arrays: Optional[frozenset[str]] = None
    eliminate_redundant: bool = False
    processors: int = 0
    scalars: tuple[tuple[str, float], ...] = ()
    use_cache: bool = True
    # execution-engine backend for the verify pass (None = default;
    # "all" = cross-check every available backend); like ``scalars``,
    # it affects execution only, never the partition or the cache key
    backend: Optional[str] = None

    @classmethod
    def from_flags(
        cls,
        duplicate: bool = False,
        duplicate_arrays: Optional[Iterable[str]] = None,
        eliminate: bool = False,
        processors: int = 0,
        scalars: Optional[Mapping[str, float]] = None,
        use_cache: bool = True,
        backend: Optional[str] = None,
    ) -> "PipelineConfig":
        """The CLI flag semantics: ``--duplicate`` / ``--duplicate-arrays``
        select the duplicate strategy, ``--eliminate`` turns on
        Section III.C elimination."""
        dup: Optional[frozenset[str]] = None
        if duplicate_arrays:
            dup = frozenset(duplicate_arrays)
        strategy = (Strategy.DUPLICATE if duplicate or dup
                    else Strategy.NONDUPLICATE)
        return cls(
            strategy=strategy,
            duplicate_arrays=dup,
            eliminate_redundant=bool(eliminate),
            processors=int(processors),
            scalars=tuple(sorted((scalars or {}).items())),
            use_cache=use_cache,
            backend=backend,
        )

    @classmethod
    def from_cli_args(cls, args: Any) -> "PipelineConfig":
        """Build from an ``argparse`` namespace (missing flags default off)."""
        raw = getattr(args, "duplicate_arrays", None)
        names = raw.split(",") if isinstance(raw, str) and raw else raw
        scalars: dict[str, float] = {}
        if getattr(args, "scalars", None):
            for part in args.scalars.split(","):
                k, v = part.split("=")
                scalars[k.strip()] = float(v)
        return cls.from_flags(
            duplicate=getattr(args, "duplicate", False),
            duplicate_arrays=names,
            eliminate=getattr(args, "eliminate", False),
            processors=getattr(args, "processors", 0) or 0,
            scalars=scalars,
            backend=getattr(args, "backend", None),
        )

    def with_processors(self, p: int) -> "PipelineConfig":
        return replace(self, processors=p)

    def scalars_dict(self) -> dict[str, float]:
        return dict(self.scalars)

    def plan_kwargs(self) -> dict:
        """Keyword form for legacy ``build_plan``-style call sites."""
        return {
            "strategy": self.strategy,
            "duplicate_arrays": (set(self.duplicate_arrays)
                                 if self.duplicate_arrays is not None else None),
            "eliminate_redundant": self.eliminate_redundant,
        }

    def cache_key_parts(self) -> tuple:
        dup = (None if self.duplicate_arrays is None
               else tuple(sorted(self.duplicate_arrays)))
        return (self.strategy.value, dup, self.eliminate_redundant)

    def describe(self) -> str:
        bits = [self.strategy.value]
        if self.duplicate_arrays is not None:
            bits.append("dup{" + ",".join(sorted(self.duplicate_arrays)) + "}")
        if self.eliminate_redundant:
            bits.append("elim")
        if self.backend is not None:
            bits.append(f"backend={self.backend}")
        return "+".join(bits)


@dataclass
class PipelineContext:
    """One compilation in flight: the nest, its config, and artifacts.

    Artifacts are stored under the names passes declare as outputs;
    the named properties below are typed accessors for the standard
    chain.  A context pre-populated with an artifact (e.g. a shared
    ``model``) makes the producing pass a no-op.
    """

    nest: Any
    config: PipelineConfig = field(default_factory=PipelineConfig)
    artifacts: dict[str, Any] = field(default_factory=dict)
    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    instrumentation: Instrumentation = field(default_factory=current_metrics)
    completed: list[str] = field(default_factory=list)

    # -- artifact store ---------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self.artifacts

    def get(self, name: str, default: Any = None) -> Any:
        return self.artifacts.get(name, default)

    def put(self, name: str, value: Any) -> None:
        self.artifacts[name] = value

    def require(self, name: str) -> Any:
        if name not in self.artifacts:
            raise KeyError(
                f"artifact {name!r} not available; ran: {self.completed}")
        return self.artifacts[name]

    # -- diagnostics ------------------------------------------------------
    def diagnose(self, severity, code: str, message: str,
                 loc: Optional[str] = None) -> None:
        diag = self.diagnostics.emit(severity, code, message, loc)
        self.instrumentation.fire_diagnostic(diag)

    # -- typed accessors for the standard artifact chain ------------------
    @property
    def model(self):
        return self.get("model")

    @property
    def redundancy(self):
        return self.get("redundancy")

    @property
    def breakdown(self):
        return self.get("breakdown")

    @property
    def plan(self):
        return self.get("plan")

    @property
    def tnest(self):
        return self.get("tnest")

    @property
    def grid(self):
        return self.get("grid")

    @property
    def assignment(self):
        return self.get("assignment")

    @property
    def verification(self):
        return self.get("verification")
