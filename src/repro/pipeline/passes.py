"""The pass manager: named, registered, instrumented compiler passes.

The paper's flow (Secs. II-IV) runs as six standard passes over a
:class:`~repro.pipeline.context.PipelineContext`:

    extract-refs          LoopNest        -> ReferenceModel
    eliminate-redundancy  ReferenceModel  -> RedundancyAnalysis | None
    choose-space          model+redundancy-> SpaceBreakdown (Psi)
    partition             model+breakdown -> PartitionPlan
    transform             nest+plan       -> TransformedNest
    map                   tnest           -> grid + block assignment

plus an optional ``verify`` pass (parallel == sequential).  Each pass
declares its input/output artifacts; the manager validates ordering,
supports running a prefix (``upto="partition"``), skips passes whose
outputs were injected (e.g. a shared ``model``), and times every
execution through the instrumentation layer.

:func:`run_pipeline` is the shared entry point behind ``build_plan``,
the CLI, ``report.py``, ``selftest.py``, the strategy selector and the
program planner; it also consults the content-addressed plan cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace
from typing import Any, Callable, Optional, Sequence

from repro.analysis.dependence import is_fully_duplicable
from repro.analysis.redundancy import analyze_redundancy
from repro.analysis.references import NonUniformReferenceError, extract_references
from repro.core.partition import (
    all_data_partitions,
    block_index_map,
    iteration_partition,
)
from repro.core.strategy import partitioning_space
from repro.lang.ast import LoopNest
from repro.mapping.cyclic import assign_blocks
from repro.mapping.grid import shape_grid
from repro.pipeline import diagnostics as diag
from repro.pipeline.cache import PLAN_CACHE, PlanCache
from repro.pipeline.context import PipelineConfig, PipelineContext
from repro.pipeline.instrument import Instrumentation, Timer
from repro.transform.loopnest import transform_nest


class PipelineError(RuntimeError):
    """A pass could not run (bad configuration or missing artifact)."""


class UnknownPassError(KeyError):
    """A pass name that is not registered."""


class PassOrderError(ValueError):
    """A pass is placed before the passes producing its inputs."""


#: Artifacts every context starts with (not produced by any pass).
SEED_ARTIFACTS = frozenset({"nest"})


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage with declared dataflow."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    run: Callable[[PipelineContext], None]
    description: str = ""


class PassManager:
    """An ordered, validated pass registry."""

    def __init__(self, passes: Sequence[Pass] = ()) -> None:
        self._passes: list[Pass] = []
        for p in passes:
            self.register(p)

    # -- registry ---------------------------------------------------------
    @property
    def passes(self) -> tuple[Pass, ...]:
        return tuple(self._passes)

    def names(self) -> list[str]:
        return [p.name for p in self._passes]

    def pass_index(self, name: str) -> int:
        for i, p in enumerate(self._passes):
            if p.name == name:
                return i
        raise UnknownPassError(name)

    def register(self, p: Pass, before: Optional[str] = None,
                 after: Optional[str] = None) -> None:
        """Append ``p``, or insert it before/after a named pass."""
        if any(q.name == p.name for q in self._passes):
            raise ValueError(f"pass {p.name!r} already registered")
        if before is not None and after is not None:
            raise ValueError("give at most one of before/after")
        if before is not None:
            idx = self.pass_index(before)
        elif after is not None:
            idx = self.pass_index(after) + 1
        else:
            idx = len(self._passes)
        self._passes.insert(idx, p)
        self.validate()

    def replace(self, name: str, p: Pass) -> None:
        """Swap the implementation of a registered pass."""
        self._passes[self.pass_index(name)] = p
        self.validate()

    def clone(self) -> "PassManager":
        out = PassManager()
        out._passes = list(self._passes)
        return out

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Every input must come from the seed set or an earlier pass."""
        available = set(SEED_ARTIFACTS)
        for p in self._passes:
            missing = [a for a in p.inputs if a not in available]
            if missing:
                raise PassOrderError(
                    f"pass {p.name!r} needs {missing} but only "
                    f"{sorted(available)} are produced before it")
            available.update(p.outputs)

    def prefix(self, upto: Optional[str]) -> list[Pass]:
        """The passes run for ``upto`` (inclusive; ``None`` = all)."""
        if upto is None:
            return list(self._passes)
        return self._passes[: self.pass_index(upto) + 1]

    def produces_in_prefix(self, artifact: str, upto: Optional[str]) -> bool:
        return any(artifact in p.outputs for p in self.prefix(upto))

    def _schedule(self, upto: Optional[str]) -> list[Pass]:
        """The demand-driven schedule for ``upto``.

        With a target pass, earlier passes run only if their outputs are
        (transitively) needed by it -- ``upto="verify"`` does not drag
        the unrelated ``transform``/``map`` passes in.  Without a
        target, every pass runs.
        """
        chain = self.prefix(upto)
        if upto is None or not chain:
            return chain
        target = chain[-1]
        selected = [target]
        needed = set(target.inputs)
        for p in reversed(chain[:-1]):
            if needed & set(p.outputs):
                selected.append(p)
                needed |= set(p.inputs)
        return list(reversed(selected))

    # -- execution --------------------------------------------------------
    def run(self, ctx: PipelineContext, upto: Optional[str] = None,
            ) -> PipelineContext:
        """Run the (validated) schedule, skipping already-satisfied passes."""
        self.validate()
        instr = ctx.instrumentation
        for p in self._schedule(upto):
            if p.outputs and all(ctx.has(a) for a in p.outputs):
                continue  # injected or cache-restored artifacts
            missing = [a for a in p.inputs
                       if not ctx.has(a) and a not in SEED_ARTIFACTS]
            if missing:
                raise PipelineError(
                    f"pass {p.name!r} is missing inputs {missing}")
            instr.fire_pass_start(p.name, ctx)
            with Timer() as t:
                p.run(ctx)
            instr.record(p.name, t.seconds)
            instr.fire_pass_end(p.name, ctx, t.seconds)
            produced = [a for a in p.outputs if not ctx.has(a)]
            if produced:
                raise PipelineError(
                    f"pass {p.name!r} did not produce {produced}")
            ctx.completed.append(p.name)
        return ctx


# ---------------------------------------------------------------------------
# the standard passes
# ---------------------------------------------------------------------------

def _pass_extract_refs(ctx: PipelineContext) -> None:
    try:
        ctx.put("model", extract_references(ctx.nest))
    except NonUniformReferenceError as exc:
        ctx.diagnose(diag.Severity.ERROR, diag.NONUNIFORM_REFERENCES,
                     str(exc), loc=ctx.nest.name or None)
        raise


def _pass_eliminate_redundancy(ctx: PipelineContext) -> None:
    if not ctx.config.eliminate_redundant:
        ctx.put("redundancy", None)
        return
    model = ctx.require("model")
    red = analyze_redundancy(model)
    total = model.space.size() * len(model.nest.statements)
    redundant = total - len(red.live)
    loc = ctx.nest.name or None
    if redundant == 0:
        ctx.diagnose(diag.Severity.NOTE, diag.NO_REDUNDANCY,
                     "redundancy elimination requested but every "
                     "computation is live; Psi is unchanged", loc=loc)
    else:
        ctx.diagnose(diag.Severity.NOTE, diag.REDUNDANCY_FOUND,
                     f"{redundant} of {total} computations are redundant; "
                     "strategies with elimination skip them (Sec. III.C)",
                     loc=loc)
    ctx.put("redundancy", red)


def _pass_choose_space(ctx: PipelineContext) -> None:
    model = ctx.require("model")
    cfg = ctx.config
    breakdown = partitioning_space(
        model,
        strategy=cfg.strategy,
        duplicate_arrays=(set(cfg.duplicate_arrays)
                          if cfg.duplicate_arrays is not None else None),
        eliminate_redundant=cfg.eliminate_redundant,
        redundancy=ctx.redundancy,
    )
    loc = ctx.nest.name or None
    if breakdown.is_fully_sequential():
        ctx.diagnose(
            diag.Severity.WARNING, diag.DEGENERATE_PSI,
            "Psi spans the whole iteration space, so only the trivial "
            "communication-free partition (a single block) exists; "
            "consider the duplicate strategy or redundancy elimination",
            loc=loc)
    elif breakdown.is_fully_parallel():
        ctx.diagnose(
            diag.Severity.NOTE, diag.FULLY_PARALLEL,
            "Psi is the zero space: every iteration is its own "
            "communication-free block", loc=loc)
    for name in sorted(breakdown.duplicated_arrays):
        if not is_fully_duplicable(model.arrays[name], model.space):
            ctx.diagnose(
                diag.Severity.NOTE, diag.PARTIAL_DUPLICATION,
                f"array {name} is not fully duplicable; its flow "
                "dependences keep contributing to Psi", loc=loc)
    ctx.put("breakdown", breakdown)


def _pass_partition(ctx: PipelineContext) -> None:
    from repro.core.plan import PartitionPlan

    model = ctx.require("model")
    breakdown = ctx.require("breakdown")
    blocks = iteration_partition(model.space, breakdown.psi)
    live = (breakdown.redundancy.live
            if breakdown.redundancy is not None else None)
    data_blocks = all_data_partitions(model, blocks, live=live)
    ctx.put("blocks", blocks)
    ctx.put("data_blocks", data_blocks)
    ctx.put("plan", PartitionPlan(
        nest=ctx.nest,
        model=model,
        breakdown=breakdown,
        blocks=blocks,
        data_blocks=data_blocks,
        _block_of=block_index_map(blocks),
    ))


def _pass_transform(ctx: PipelineContext) -> None:
    plan = ctx.require("plan")
    ctx.put("tnest", transform_nest(ctx.nest, plan.psi))


def _pass_map(ctx: PipelineContext) -> None:
    if ctx.config.processors < 1:
        raise PipelineError(
            "the 'map' pass needs config.processors >= 1 "
            f"(got {ctx.config.processors})")
    tnest = ctx.require("tnest")
    grid = shape_grid(ctx.config.processors, tnest.k)
    ctx.put("grid", grid)
    ctx.put("assignment", assign_blocks(tnest, grid))


def _pass_verify(ctx: PipelineContext) -> None:
    from repro.runtime.verify import _verify_plan

    plan = ctx.require("plan")
    scalars = ctx.config.scalars_dict()
    report = _verify_plan(plan, scalars=scalars or None,
                          backend=ctx.config.backend)
    ctx.instrumentation.count(f"engine:{report.backend}")
    for name in report.cross_checked:
        if name != report.backend:
            ctx.instrumentation.count(f"engine:{name}")
    ctx.put("verification", report)


EXTRACT_REFS = Pass(
    name="extract-refs", inputs=("nest",), outputs=("model",),
    run=_pass_extract_refs,
    description="decompose array references into A[H i + c] form (Sec. II)")
ELIMINATE_REDUNDANCY = Pass(
    name="eliminate-redundancy", inputs=("model",), outputs=("redundancy",),
    run=_pass_eliminate_redundancy,
    description="redundant-computation analysis (Sec. III.C); no-op "
                "unless the config asks for elimination")
CHOOSE_SPACE = Pass(
    name="choose-space", inputs=("model", "redundancy"),
    outputs=("breakdown",), run=_pass_choose_space,
    description="combined partitioning space Psi for the strategy "
                "(Theorems 1-4)")
PARTITION = Pass(
    name="partition", inputs=("model", "breakdown"),
    outputs=("blocks", "data_blocks", "plan"), run=_pass_partition,
    description="iteration and data partitions + the PartitionPlan "
                "(Defs. 2-3)")
TRANSFORM = Pass(
    name="transform", inputs=("nest", "plan"), outputs=("tnest",),
    run=_pass_transform,
    description="loop transformation to forall form (Sec. IV)")
MAP = Pass(
    name="map", inputs=("tnest",), outputs=("grid", "assignment"),
    run=_pass_map,
    description="processor grid shaping + cyclic block assignment")
VERIFY = Pass(
    name="verify", inputs=("plan",), outputs=("verification",),
    run=_pass_verify,
    description="end-to-end parallel == sequential check")

STANDARD_PASSES = (EXTRACT_REFS, ELIMINATE_REDUNDANCY, CHOOSE_SPACE,
                   PARTITION, TRANSFORM, MAP, VERIFY)


def default_manager() -> PassManager:
    """A fresh manager with the standard passes (mutate freely)."""
    return PassManager(STANDARD_PASSES)


#: Shared immutable-by-convention manager used when callers pass none.
DEFAULT_MANAGER = default_manager()


# ---------------------------------------------------------------------------
# the shared entry point (with plan caching)
# ---------------------------------------------------------------------------

@dataclass
class _CachedResult:
    """What the plan cache stores: the plan plus its diagnostics."""

    plan: Any
    diagnostics: tuple = field(default_factory=tuple)


def _seed_from_cache(ctx: PipelineContext, entry: _CachedResult) -> None:
    plan = entry.plan
    # rebind to the caller's (structurally identical) nest/model objects
    # so `plan.nest is nest` / `plan.model is model` hold as for a fresh
    # build; everything expensive is shared with the cached plan
    model = ctx.get("model") if ctx.has("model") else plan.model
    if plan.nest is not ctx.nest or plan.model is not model:
        plan = dataclasses_replace(plan, nest=ctx.nest, model=model)
    ctx.put("model", model)
    ctx.put("redundancy", plan.breakdown.redundancy)
    ctx.put("breakdown", plan.breakdown)
    ctx.put("blocks", plan.blocks)
    ctx.put("data_blocks", plan.data_blocks)
    ctx.put("plan", plan)
    for d in entry.diagnostics:
        ctx.diagnostics.emit(d.severity, d.code, d.message, d.loc)


def run_pipeline(
    nest: LoopNest,
    config: Optional[PipelineConfig] = None,
    upto: Optional[str] = "partition",
    manager: Optional[PassManager] = None,
    instrumentation: Optional[Instrumentation] = None,
    model: Any = None,
    cache: Optional[PlanCache] = None,
) -> PipelineContext:
    """Run the pass pipeline on ``nest`` and return the context.

    ``upto`` names the last pass to run (inclusive); ``model`` injects a
    pre-extracted :class:`ReferenceModel` (the producing pass is then
    skipped).  With ``config.use_cache`` the content-addressed plan
    cache short-circuits everything up to and including ``partition``.
    """
    config = config or PipelineConfig()
    manager = manager or DEFAULT_MANAGER
    ctx = PipelineContext(nest=nest, config=config)
    if instrumentation is not None:
        ctx.instrumentation = instrumentation
    if model is not None:
        ctx.put("model", model)

    use_cache = config.use_cache and manager.produces_in_prefix("plan", upto)
    key: Optional[tuple] = None
    if use_cache:
        cache = cache if cache is not None else PLAN_CACHE
        key = PlanCache.key_for(nest, config)
        entry = cache.get(key, ctx.instrumentation)
        if entry is not None:
            _seed_from_cache(ctx, entry)

    manager.run(ctx, upto=upto)

    if use_cache and key is not None and ctx.has("plan") and key not in cache:
        cache.put(key, _CachedResult(plan=ctx.plan,
                                     diagnostics=ctx.diagnostics.records),
                  ctx.instrumentation)
    return ctx
