"""Shared on-disk cache plumbing: flock lock, manifest, LRU eviction.

Two persistent caches grew the same clcache-shaped skeleton
independently -- the codegen kernel cache
(:mod:`repro.runtime.engine.codegen.diskcache`) with the full
lock/manifest/evict treatment, and the plan cache
(:mod:`repro.pipeline.cache`) with a naive one-pickle-per-key store
that had no lock, no manifest and no eviction.  Once the serving
daemon runs many worker threads (and its warm pool runs worker
*processes*) against one cache directory, the naive store can tear:
two writers racing ``os.replace`` is fine, but a reader catching a
half-written temp file or an unbounded directory is not.

:class:`DiskStore` is the shared skeleton both now use:

- every mutating operation happens under an exclusive ``flock`` on a
  sidecar ``lock`` file, so concurrent processes serialize on the
  manifest and never observe torn state;
- ``manifest.json`` (format v1: ``{"version": 1, "clock": N,
  "entries": {key: {"bytes": ..., "used": ...}}}``) records entry
  sizes and a logical access clock for LRU eviction under a byte cap;
- payload files are written to a temp name and ``os.replace``d into
  place, so readers only ever see complete files;
- a corrupt manifest or payload reads as empty/missing, never as an
  error -- caches are optimizations, every failure path degrades to
  recomputing.

The store is policy-free about payload encoding: callers hand it raw
bytes under ``<key><suffix>`` names and do their own pickling or
marshalling, and callers own their metric names (the kernel cache's
``cache.disk.*`` family predates this module and is kept verbatim).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Optional, Union

MANIFEST = "manifest.json"
LOCK = "lock"


class DiskStore:
    """Lock-safe manifest-tracked byte store under one directory."""

    def __init__(self, root: Union[str, Path],
                 cap_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.cap_bytes = cap_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / LOCK

    # -- locking ----------------------------------------------------------
    @contextmanager
    def locked(self):
        """Exclusive advisory lock over the whole store (per open fd,
        so it serializes threads and processes alike)."""
        fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            try:
                import fcntl

                fcntl.flock(fd, fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-POSIX fallback
                pass
            yield
        finally:
            os.close(fd)  # closing drops the flock

    # -- manifest ---------------------------------------------------------
    def read_manifest(self) -> dict:
        try:
            m = json.loads((self.root / MANIFEST).read_text())
            if m.get("version") == 1 and isinstance(m.get("entries"), dict):
                return m
        except (OSError, ValueError):
            pass
        return {"version": 1, "clock": 0, "entries": {}}

    def write_manifest(self, m: dict) -> None:
        tmp = self.root / f"{MANIFEST}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(m, sort_keys=True))
        os.replace(tmp, self.root / MANIFEST)

    @staticmethod
    def total_bytes(m: dict) -> int:
        return sum(e.get("bytes", 0) for e in m["entries"].values())

    @staticmethod
    def touch(m: dict, key: str) -> None:
        """Advance the logical clock and mark ``key`` most recently used."""
        m["clock"] += 1
        m["entries"][key]["used"] = m["clock"]

    def record(self, m: dict, key: str, nbytes: int, **extra) -> None:
        """(Re)register ``key`` as most recently used at ``nbytes``."""
        m["clock"] += 1
        m["entries"][key] = {"bytes": nbytes, "used": m["clock"], **extra}

    # -- payload files ----------------------------------------------------
    def write_file(self, name: str, data: bytes) -> None:
        tmp = self.root / f"{name}.tmp.{os.getpid()}"
        tmp.write_bytes(data)
        os.replace(tmp, self.root / name)

    def read_file(self, name: str) -> bytes:
        """Raw payload bytes; raises ``OSError`` when absent."""
        return (self.root / name).read_bytes()

    def remove(self, key: str, suffixes: Iterable[str]) -> None:
        for suffix in suffixes:
            try:
                (self.root / f"{key}{suffix}").unlink()
            except FileNotFoundError:
                pass

    # -- eviction ---------------------------------------------------------
    def evict_lru(self, m: dict, suffixes: Iterable[str],
                  protect: Iterable[str] = ()) -> list[str]:
        """Drop least-recently-used entries until under the byte cap.

        ``protect`` keys (typically the one just stored) are never
        chosen while any other entry remains.  Returns the evicted
        keys; the caller still owns writing the manifest.
        """
        if self.cap_bytes is None:
            return []
        protected = set(protect)
        suffixes = tuple(suffixes)
        evicted: list[str] = []
        while (self.total_bytes(m) > self.cap_bytes
               and len(m["entries"]) > len(protected & set(m["entries"]))):
            victim = min(
                (k for k in m["entries"] if k not in protected),
                key=lambda k: m["entries"][k].get("used", 0))
            del m["entries"][victim]
            self.remove(victim, suffixes)
            evicted.append(victim)
        return evicted
