"""Structured compiler diagnostics.

Analysis facts that previously surfaced as ad-hoc prints or were lost
entirely (a degenerate partitioning space, arrays that resist
duplication, elimination that finds nothing to eliminate) are recorded
as :class:`Diagnostic` records on the pipeline context.  The CLI renders
them to stderr so machine-readable stdout stays stable; ``report.py``
folds them into its diagnostics section.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` gives the worst."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding: ``severity`` + stable ``code`` + prose.

    ``loc`` names what the finding is about (a loop, an array, a pass);
    it is free-form because the mini-language has no file/line spans.
    """

    severity: Severity
    code: str
    message: str
    loc: Optional[str] = None

    def render(self) -> str:
        where = f" at {self.loc}" if self.loc else ""
        return f"{self.severity.label}[{self.code}]{where}: {self.message}"


class DiagnosticBag:
    """An ordered collection of diagnostics with query helpers."""

    def __init__(self) -> None:
        self._records: list[Diagnostic] = []

    def emit(
        self,
        severity: Severity,
        code: str,
        message: str,
        loc: Optional[str] = None,
    ) -> Diagnostic:
        diag = Diagnostic(severity=severity, code=code, message=message, loc=loc)
        self._records.append(diag)
        return diag

    def note(self, code: str, message: str, loc: Optional[str] = None) -> Diagnostic:
        return self.emit(Severity.NOTE, code, message, loc)

    def warning(self, code: str, message: str, loc: Optional[str] = None) -> Diagnostic:
        return self.emit(Severity.WARNING, code, message, loc)

    def error(self, code: str, message: str, loc: Optional[str] = None) -> Diagnostic:
        return self.emit(Severity.ERROR, code, message, loc)

    def extend(self, other: "DiagnosticBag") -> None:
        self._records.extend(other._records)

    # -- queries ----------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    @property
    def records(self) -> tuple[Diagnostic, ...]:
        return tuple(self._records)

    def with_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self._records if d.code == code]

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self._records if d.severity >= severity]

    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._records)

    def render(self) -> str:
        return "\n".join(d.render() for d in self._records)


# Stable diagnostic codes (kept in one place so tests and renderers can
# refer to them without string drift).
DEGENERATE_PSI = "degenerate-psi"
FULLY_PARALLEL = "fully-parallel"
PARTIAL_DUPLICATION = "partial-duplication"
NO_REDUNDANCY = "no-redundancy"
REDUNDANCY_FOUND = "redundancy-found"
NONUNIFORM_REFERENCES = "nonuniform-references"
HOOK_ERROR = "hook-error"
