"""Per-pass instrumentation: wall time, call counts, named counters.

The pass manager reports every pass execution here via
:meth:`Instrumentation.record`; the plan cache reports hits and misses
via :meth:`Instrumentation.count`.  ``--timings`` on any CLI subcommand
prints :meth:`Instrumentation.timing_table`.

Hooks (:class:`PipelineHooks`) let callers observe pass boundaries and
diagnostics as they happen -- the protocol a build system or IDE
integration would attach to.  A hook that raises never aborts the
build: the error is isolated, counted under the ``hooks.errors``
counter, and surfaced as a warning diagnostic on the context.

Everything recorded here is also published to the unified metrics
registry (:mod:`repro.obs.metrics`): pass timings as
``pipeline.pass.seconds.<name>`` histograms, counters under their own
names -- so one registry snapshot covers compile, execute and simulate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.ctxstack import ScopeStack
from repro.obs.metrics import current_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import PipelineContext
    from repro.pipeline.diagnostics import Diagnostic

#: Counter charged once per isolated (swallowed) hook exception.
HOOK_ERROR_COUNTER = "hooks.errors"


class PipelineHooks:
    """Event-hook protocol; subclass and override what you need."""

    def on_pass_start(self, name: str, ctx: "PipelineContext") -> None:
        pass

    def on_pass_end(self, name: str, ctx: "PipelineContext",
                    seconds: float) -> None:
        pass

    def on_diagnostic(self, diag: "Diagnostic") -> None:
        pass


@dataclass
class PassStats:
    """Accumulated timing for one named pass."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


class Instrumentation:
    """Accumulates pass timings and named counters; fans out to hooks."""

    def __init__(self) -> None:
        self.passes: dict[str, PassStats] = {}
        self.counters: dict[str, int] = {}
        self.hooks: list[PipelineHooks] = []
        #: isolated hook failures, newest last: (hook class, method, error)
        self.hook_errors: list[tuple[str, str, str]] = []

    # -- recording --------------------------------------------------------
    def record(self, name: str, seconds: float) -> None:
        from repro.obs.flight import flight

        stats = self.passes.setdefault(name, PassStats())
        stats.calls += 1
        stats.seconds += seconds
        current_registry().observe(f"pipeline.pass.seconds.{name}", seconds)
        flight().record("span", f"pass.{name}",
                        dur_us=round(seconds * 1e6, 1))

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        current_registry().inc(name, n)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def reset(self) -> None:
        self.passes.clear()
        self.counters.clear()
        self.hook_errors.clear()

    # -- hook fan-out -----------------------------------------------------
    def add_hooks(self, hooks: PipelineHooks) -> None:
        self.hooks.append(hooks)

    def _isolate(self, hook: PipelineHooks, method: str, exc: Exception,
                 ctx: Optional["PipelineContext"]) -> None:
        """Record a hook failure without letting it abort the build."""
        self.count(HOOK_ERROR_COUNTER)
        name = type(hook).__name__
        self.hook_errors.append((name, method, f"{type(exc).__name__}: {exc}"))
        if ctx is not None:
            # append directly (not via ctx.diagnose) so a broken
            # on_diagnostic hook cannot recurse through the fan-out
            from repro.pipeline import diagnostics as diag

            ctx.diagnostics.emit(
                diag.Severity.WARNING, diag.HOOK_ERROR,
                f"pipeline hook {name}.{method} raised "
                f"{type(exc).__name__}: {exc}; hook isolated, build "
                "continues", loc=method)

    def fire_pass_start(self, name: str, ctx: "PipelineContext") -> None:
        for h in self.hooks:
            try:
                h.on_pass_start(name, ctx)
            except Exception as exc:
                self._isolate(h, "on_pass_start", exc, ctx)

    def fire_pass_end(self, name: str, ctx: "PipelineContext",
                      seconds: float) -> None:
        for h in self.hooks:
            try:
                h.on_pass_end(name, ctx, seconds)
            except Exception as exc:
                self._isolate(h, "on_pass_end", exc, ctx)

    def fire_diagnostic(self, diag: "Diagnostic") -> None:
        for h in self.hooks:
            try:
                h.on_diagnostic(diag)
            except Exception as exc:
                self._isolate(h, "on_diagnostic", exc, None)

    # -- reporting --------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.passes.values())

    def timing_table(self) -> str:
        """A per-pass timing table plus counter lines (cache hits etc.).

        Deterministic: passes are sorted by total time (descending),
        ties broken by name; counters are sorted by name.
        """
        lines = [f"{'pass':<22} {'calls':>6} {'total(ms)':>10} {'mean(ms)':>10}"]
        if not self.passes:
            lines.append("(no passes recorded)")
        ordered = sorted(self.passes.items(),
                         key=lambda kv: (-kv[1].seconds, kv[0]))
        for name, st in ordered:
            lines.append(f"{name:<22} {st.calls:>6} {st.seconds * 1e3:>10.3f} "
                         f"{st.mean_seconds * 1e3:>10.3f}")
        total = self.total_seconds()
        lines.append(f"{'total':<22} {'':>6} {total * 1e3:>10.3f} {'':>10}")
        for name in sorted(self.counters):
            lines.append(f"counter {name}: {self.counters[name]}")
        return "\n".join(lines)


class Timer:
    """Context manager measuring one pass execution."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0


#: Process-wide default sink; the CLI swaps in a fresh one under
#: ``--timings`` so the table covers exactly one command.
PIPELINE_METRICS = Instrumentation()

_metrics_stack = ScopeStack(PIPELINE_METRICS)


def current_metrics() -> Instrumentation:
    """The instrumentation new pipeline contexts default to (per thread)."""
    return _metrics_stack.top(PIPELINE_METRICS)


def use_metrics(instr: Instrumentation):
    """Scope the default instrumentation (e.g. per CLI command)."""
    return _metrics_stack.scoped(instr)
