"""Per-pass instrumentation: wall time, call counts, named counters.

The pass manager reports every pass execution here via
:meth:`Instrumentation.record`; the plan cache reports hits and misses
via :meth:`Instrumentation.count`.  ``--timings`` on any CLI subcommand
prints :meth:`Instrumentation.timing_table`.

Hooks (:class:`PipelineHooks`) let callers observe pass boundaries and
diagnostics as they happen -- the protocol a build system or IDE
integration would attach to.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import PipelineContext
    from repro.pipeline.diagnostics import Diagnostic


class PipelineHooks:
    """Event-hook protocol; subclass and override what you need."""

    def on_pass_start(self, name: str, ctx: "PipelineContext") -> None:
        pass

    def on_pass_end(self, name: str, ctx: "PipelineContext",
                    seconds: float) -> None:
        pass

    def on_diagnostic(self, diag: "Diagnostic") -> None:
        pass


@dataclass
class PassStats:
    """Accumulated timing for one named pass."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


class Instrumentation:
    """Accumulates pass timings and named counters; fans out to hooks."""

    def __init__(self) -> None:
        self.passes: dict[str, PassStats] = {}
        self.counters: dict[str, int] = {}
        self.hooks: list[PipelineHooks] = []

    # -- recording --------------------------------------------------------
    def record(self, name: str, seconds: float) -> None:
        stats = self.passes.setdefault(name, PassStats())
        stats.calls += 1
        stats.seconds += seconds

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def reset(self) -> None:
        self.passes.clear()
        self.counters.clear()

    # -- hook fan-out -----------------------------------------------------
    def add_hooks(self, hooks: PipelineHooks) -> None:
        self.hooks.append(hooks)

    def fire_pass_start(self, name: str, ctx: "PipelineContext") -> None:
        for h in self.hooks:
            h.on_pass_start(name, ctx)

    def fire_pass_end(self, name: str, ctx: "PipelineContext",
                      seconds: float) -> None:
        for h in self.hooks:
            h.on_pass_end(name, ctx, seconds)

    def fire_diagnostic(self, diag: "Diagnostic") -> None:
        for h in self.hooks:
            h.on_diagnostic(diag)

    # -- reporting --------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.passes.values())

    def timing_table(self) -> str:
        """A per-pass timing table plus counter lines (cache hits etc.)."""
        lines = [f"{'pass':<22} {'calls':>6} {'total(ms)':>10} {'mean(ms)':>10}"]
        if not self.passes:
            lines.append("(no passes recorded)")
        for name, st in self.passes.items():
            lines.append(f"{name:<22} {st.calls:>6} {st.seconds * 1e3:>10.3f} "
                         f"{st.mean_seconds * 1e3:>10.3f}")
        total = self.total_seconds()
        lines.append(f"{'total':<22} {'':>6} {total * 1e3:>10.3f} {'':>10}")
        for name in sorted(self.counters):
            lines.append(f"counter {name}: {self.counters[name]}")
        return "\n".join(lines)


class Timer:
    """Context manager measuring one pass execution."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0


#: Process-wide default sink; the CLI swaps in a fresh one under
#: ``--timings`` so the table covers exactly one command.
PIPELINE_METRICS = Instrumentation()

_metrics_stack: list[Instrumentation] = [PIPELINE_METRICS]


def current_metrics() -> Instrumentation:
    """The instrumentation new pipeline contexts default to."""
    return _metrics_stack[-1]


@contextmanager
def use_metrics(instr: Instrumentation) -> Iterator[Instrumentation]:
    """Scope the default instrumentation (e.g. per CLI command)."""
    _metrics_stack.append(instr)
    try:
        yield instr
    finally:
        _metrics_stack.pop()
