"""Multi-loop programs: composing per-nest communication-free plans.

The paper's technique "considers each nested loop independently in a
program" (Section V).  This layer composes the per-nest plans into a
whole-program schedule:

- :mod:`~repro.program.model`: a :class:`Program` is an ordered list of
  loop nests sharing arrays; phase-by-phase sequential and parallel
  execution with verification;
- :mod:`~repro.program.realloc`: between consecutive phases the arrays
  may need *reallocation* (an element's owner in the producing phase is
  not its owner in the consuming phase); we compute the exact element
  flows and charge them with the machine cost model -- the only
  communication a communication-free-per-loop program ever pays;
- :func:`~repro.program.model.plan_program`: per-phase strategy
  selection (via :mod:`repro.perf.selector`) that accounts for the
  reallocation traffic between phases, not just per-loop makespans.
"""

from repro.program.model import (
    Phase,
    Program,
    ProgramPlan,
    plan_program,
    run_program_parallel,
    run_program_sequential,
    verify_program,
)
from repro.program.realloc import ReallocationReport, reallocation_between

__all__ = [
    "Phase",
    "Program",
    "ProgramPlan",
    "plan_program",
    "run_program_sequential",
    "run_program_parallel",
    "verify_program",
    "ReallocationReport",
    "reallocation_between",
]
