"""Inter-phase data reallocation analysis.

Each phase's plan fixes where every array element lives (the block ->
processor mapping of that phase).  When phase ``t+1``'s layout differs
from phase ``t``'s, elements must move before phase ``t+1`` starts.
This module computes the exact flows:

- an element *moves* if some processor needs it in the next phase but
  did not hold its current value: its source is the phase-``t`` owner
  of the last write (or any holder, for data only read so far);
- flows are aggregated per (source, destination) processor pair and
  charged as pipelined transfers on the machine cost model.

The result quantifies the communication a per-loop communication-free
program pays *between* loops -- the trade-off the paper's Section V
leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.plan import PartitionPlan
from repro.machine.cost import CostModel, TRANSPUTER
from repro.machine.topology import Topology
from repro.perf.general import mesh_for

Coords = tuple[int, ...]
Element = tuple[str, Coords]


def element_owners(plan: PartitionPlan,
                   mapping: dict[int, int]) -> dict[Element, set[int]]:
    """(array, coords) -> processor ids holding it under this plan."""
    owners: dict[Element, set[int]] = {}
    for name, dblocks in plan.data_blocks.items():
        for db in dblocks:
            pid = mapping[db.block_index]
            for e in db.elements:
                owners.setdefault((name, e), set()).add(pid)
    return owners


def writer_pids(plan: PartitionPlan,
                mapping: dict[int, int]) -> dict[Element, int]:
    """(array, coords) -> pid holding the sequentially-last written copy."""
    out: dict[Element, tuple[int, int]] = {}  # element -> (seq, pid)
    nest = plan.nest
    model = plan.model
    seq = 0
    live = plan.live
    order: dict[tuple[int, Coords], int] = {}
    for it in model.space.iterate():
        for k in range(len(nest.statements)):
            order[(k, it)] = seq
            seq += 1
    for info in model.arrays.values():
        for ref in info.references:
            if not ref.is_write:
                continue
            for b in plan.blocks:
                pid = mapping[b.index]
                for it in b.iterations:
                    if live is not None and (ref.stmt_index, it) not in live:
                        continue
                    e = (info.name, info.element_at(it, ref.offset))
                    s = order[(ref.stmt_index, it)]
                    cur = out.get(e)
                    if cur is None or s > cur[0]:
                        out[e] = (s, pid)
    return {e: pid for e, (s, pid) in out.items()}


@dataclass
class ReallocationReport:
    """Element flows between two consecutive phases."""

    moved_words: int = 0
    kept_words: int = 0
    # (src_pid, dst_pid) -> word count
    flows: dict[tuple[int, int], int] = field(default_factory=dict)
    time: float = 0.0           # fully serialized transfers
    parallel_time: float = 0.0  # distinct sources overlap (lower bound)

    @property
    def messages(self) -> int:
        return len(self.flows)

    @property
    def locality(self) -> float:
        """Fraction of needed words already in place (1.0 = no movement)."""
        total = self.moved_words + self.kept_words
        return self.kept_words / total if total else 1.0


def reallocation_between(
    prev_plan: PartitionPlan,
    prev_mapping: dict[int, int],
    next_plan: PartitionPlan,
    next_mapping: dict[int, int],
    cost: CostModel = TRANSPUTER,
    topology: Optional[Topology] = None,
) -> ReallocationReport:
    """Exact reallocation flows from ``prev`` layout to ``next`` layout.

    Only arrays referenced by both phases participate; elements the next
    phase needs but the previous phase never touched are initial data
    (charged to the host distribution of the next phase, not here).
    """
    report = ReallocationReport()
    prev_owners = element_owners(prev_plan, prev_mapping)
    writers = writer_pids(prev_plan, prev_mapping)
    next_owners = element_owners(next_plan, next_mapping)

    shared_arrays = set(prev_plan.model.arrays) & set(next_plan.model.arrays)
    for element, dsts in next_owners.items():
        name, _coords = element
        if name not in shared_arrays or element not in prev_owners:
            continue
        # the authoritative source: the last writer's copy if written,
        # otherwise any previous holder (all copies equal then)
        src = writers.get(element)
        holders = prev_owners[element]
        if src is None:
            src = min(holders)
        for dst in sorted(dsts):
            if dst == src or (element not in writers and dst in holders):
                report.kept_words += 1
            else:
                report.moved_words += 1
                key = (src, dst)
                report.flows[key] = report.flows.get(key, 0) + 1

    if topology is None:
        nprocs = max(
            [pid for pid in prev_mapping.values()]
            + [pid for pid in next_mapping.values()] + [0]
        ) + 1
        topology = mesh_for(max(1, nprocs))
    per_source: dict[int, float] = {}
    for (src, dst), words in sorted(report.flows.items()):
        hops = topology.hops(src, dst) if src != dst else 1
        t = cost.pipelined(words, max(1, hops))
        report.time += t
        per_source[src] = per_source.get(src, 0.0) + t
    # all-to-all phases overlap across senders (each node has its own
    # injection channel); the makespan lower bound is the busiest sender
    report.parallel_time = max(per_source.values(), default=0.0)
    return report
