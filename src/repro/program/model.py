"""Programs: ordered loop nests over shared arrays.

A :class:`Program` executes its nests in order; arrays persist across
phases (phase ``t+1`` reads what phase ``t`` wrote).  Each phase gets
its own communication-free plan; the only interprocessor communication
is the inter-phase reallocation computed by
:mod:`repro.program.realloc`.

``run_program_parallel`` executes each phase with the parallel executor
seeded from the current global state, merges, and continues -- the
semantics of a barrier-synchronized phase program.  ``verify_program``
checks the final state against whole-program sequential execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.analysis.references import extract_references
from repro.core.plan import PartitionPlan
from repro.core.strategy import Strategy
from repro.pipeline import PipelineConfig, run_pipeline
from repro.lang.ast import LoopNest
from repro.machine.cost import CostModel, TRANSPUTER
from repro.perf.general import block_to_pid_map, estimate_plan
from repro.perf.selector import choose_strategy
from repro.program.realloc import ReallocationReport, reallocation_between
from repro.mapping.grid import shape_grid
from repro.runtime.arrays import DataSpace, array_footprints, default_init
from repro.runtime.merge import merge_copies
from repro.runtime.parallel import _run_parallel
from repro.runtime.seq import run_sequential
from repro.transform.loopnest import transform_nest


@dataclass
class Phase:
    """One planned phase of a program."""

    nest: LoopNest
    plan: PartitionPlan
    mapping: dict[int, int]            # block -> pid
    compute_time: float = 0.0
    distribution_time: float = 0.0


@dataclass
class Program:
    """An ordered sequence of loop nests over shared arrays."""

    nests: Sequence[LoopNest]
    name: str = ""

    def __post_init__(self):
        if not self.nests:
            raise ValueError("empty program")

    def array_names(self) -> list[str]:
        out: list[str] = []
        for nest in self.nests:
            for a in nest.array_names():
                if a not in out:
                    out.append(a)
        return out

    def make_arrays(self, init=None) -> dict[str, DataSpace]:
        """Allocate every array with bounds covering all phases."""
        init = init or default_init
        lo: dict[str, list[int]] = {}
        hi: dict[str, list[int]] = {}
        for nest in self.nests:
            model = extract_references(nest)
            for name, (l, h) in array_footprints(model).items():
                if name not in lo:
                    lo[name], hi[name] = list(l), list(h)
                else:
                    if len(l) != len(lo[name]):
                        raise ValueError(
                            f"array {name} used with different ranks across phases")
                    lo[name] = [min(a, b) for a, b in zip(lo[name], l)]
                    hi[name] = [max(a, b) for a, b in zip(hi[name], h)]
        return {
            name: DataSpace(name, tuple(lo[name]), tuple(hi[name]))
            .fill_with(init(name))
            for name in lo
        }


@dataclass
class ProgramPlan:
    """Plans for every phase plus the inter-phase reallocations."""

    program: Program
    phases: list[Phase]
    reallocations: list[ReallocationReport] = field(default_factory=list)

    @property
    def total_compute(self) -> float:
        return sum(ph.compute_time for ph in self.phases)

    @property
    def total_distribution(self) -> float:
        return self.phases[0].distribution_time if self.phases else 0.0

    @property
    def total_reallocation(self) -> float:
        return sum(r.time for r in self.reallocations)

    @property
    def makespan(self) -> float:
        """Initial distribution + per-phase compute + reallocation barriers."""
        return (self.total_distribution + self.total_compute
                + self.total_reallocation)

    def summary(self) -> str:
        lines = [f"program {self.program.name or '<anon>'}: "
                 f"{len(self.phases)} phases"]
        for i, ph in enumerate(self.phases):
            lines.append(
                f"  phase {i} ({ph.nest.name or '?'}): "
                f"{ph.plan.num_blocks} blocks, compute {ph.compute_time:.6f}s")
            if i < len(self.reallocations):
                r = self.reallocations[i]
                lines.append(
                    f"    realloc -> phase {i + 1}: {r.moved_words} words "
                    f"moved ({r.locality:.0%} local), {r.time:.6f}s")
        lines.append(f"  makespan: {self.makespan:.6f}s")
        return "\n".join(lines)


def plan_program(
    program: Program,
    p: int,
    cost: CostModel = TRANSPUTER,
    strategy: Optional[Strategy] = None,
    consider_elimination: bool = False,
) -> ProgramPlan:
    """Plan every phase and account inter-phase reallocation.

    With ``strategy`` given, every phase uses it; otherwise each phase
    runs the cost-based selector (:func:`repro.perf.choose_strategy`).
    """
    phases: list[Phase] = []
    for nest in program.nests:
        if strategy is None:
            best = choose_strategy(nest, p, cost=cost,
                                   consider_elimination=consider_elimination).best
            plan, est = best.plan, best.estimate
        else:
            config = PipelineConfig(strategy=strategy)
            plan = run_pipeline(nest, config, upto="partition").plan
            est = estimate_plan(plan, p, cost=cost)
        tnest = transform_nest(nest, plan.psi)
        grid = shape_grid(p, tnest.k)
        mapping = block_to_pid_map(plan, tnest, grid)
        phases.append(Phase(nest=nest, plan=plan, mapping=mapping,
                            compute_time=est.compute_time,
                            distribution_time=est.distribution_time))
    reallocs = [
        reallocation_between(phases[i].plan, phases[i].mapping,
                             phases[i + 1].plan, phases[i + 1].mapping,
                             cost=cost)
        for i in range(len(phases) - 1)
    ]
    return ProgramPlan(program=program, phases=phases, reallocations=reallocs)


def run_program_sequential(program: Program,
                           arrays: dict[str, DataSpace],
                           scalars: Optional[Mapping[str, float]] = None,
                           ) -> dict[str, DataSpace]:
    for nest in program.nests:
        run_sequential(nest, arrays, scalars=scalars)
    return arrays


def run_program_parallel(pplan: ProgramPlan,
                         arrays: dict[str, DataSpace],
                         scalars: Optional[Mapping[str, float]] = None,
                         ) -> dict[str, DataSpace]:
    """Phase-parallel execution with merge barriers between phases."""
    state = arrays
    for ph in pplan.phases:
        # restrict the phase's view to the arrays it references, re-based
        # on the current global state
        model = ph.plan.model
        phase_initial = {name: state[name] for name in model.arrays}
        result = _run_parallel(ph.plan, initial=phase_initial,
                               scalars=scalars, block_to_pid=ph.mapping)
        merged = merge_copies(result, phase_initial)
        for name, ds in merged.items():
            state[name] = ds
    return state


@dataclass
class ProgramVerification:
    equal: bool
    mismatches: list

    @property
    def ok(self) -> bool:
        return self.equal


def verify_program(pplan: ProgramPlan,
                   scalars: Optional[Mapping[str, float]] = None,
                   init=None) -> ProgramVerification:
    """Phase-parallel final state == whole-program sequential state."""
    base = pplan.program.make_arrays(init=init)
    seq = {n: a.copy() for n, a in base.items()}
    run_program_sequential(pplan.program, seq, scalars=scalars)
    par = {n: a.copy() for n, a in base.items()}
    par = run_program_parallel(pplan, par, scalars=scalars)
    mismatches = []
    for name, ds in seq.items():
        for c in ds.coords_iter():
            if ds[c] != par[name][c]:
                mismatches.append((name, tuple(c), ds[c], par[name][c]))
    return ProgramVerification(equal=not mismatches, mismatches=mismatches)
