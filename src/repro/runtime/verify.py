"""End-to-end verification: parallel == sequential, with zero communication.

:func:`verify_plan` is the strongest check in the repository: it runs
the sequential golden model and the partitioned parallel execution from
identical initial data, merges the replicated copies, and compares
final array contents bit-for-bit, while also asserting that not a
single remote access occurred.  The parallel execution can run on any
engine backend (``backend=``); :func:`cross_check_backends` runs it on
*every* available backend and demands they all agree with the golden
model -- the strongest form, used by ``verify --backend all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.plan import PartitionPlan
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer
from repro.runtime.arrays import DataSpace, make_arrays
from repro.runtime.merge import merge_copies
from repro.runtime.parallel import ParallelResult, _run_parallel
from repro.runtime.seq import run_sequential


@dataclass
class VerificationReport:
    """Outcome of one end-to-end verification."""

    plan: PartitionPlan
    equal: bool
    remote_accesses: int
    num_blocks: int
    executed_iterations: int
    skipped_computations: int
    mismatches: list[tuple[str, tuple[int, ...], float, float]]
    # canonical name of the engine that ran the parallel execution
    backend: str = "interp"
    # backend-name -> report, when cross-checking every backend
    cross_checked: dict[str, "VerificationReport"] = field(default_factory=dict)

    @property
    def communication_free(self) -> bool:
        return self.remote_accesses == 0

    @property
    def ok(self) -> bool:
        return self.equal and self.communication_free

    def summary(self) -> str:
        """One-line verdict (the Summary protocol)."""
        if self.cross_checked:
            agreed = ", ".join(sorted(self.cross_checked))
            verdict = "ok" if self.ok else "FAILED"
            return (f"verify [all backends]: {verdict} -- cross-checked "
                    f"{agreed}")
        verdict = "ok" if self.ok else "FAILED"
        return (f"verify [{self.backend}]: {verdict} -- "
                f"{self.num_blocks} blocks, "
                f"{self.executed_iterations} iterations, "
                f"{self.remote_accesses} remote accesses, "
                f"{len(self.mismatches)} mismatches")

    def to_json(self) -> dict:
        data = {
            "ok": self.ok,
            "equal": self.equal,
            "communication_free": self.communication_free,
            "backend": self.backend,
            "blocks": self.num_blocks,
            "executed_iterations": self.executed_iterations,
            "skipped_computations": self.skipped_computations,
            "remote_accesses": self.remote_accesses,
            "mismatches": [
                [name, list(coords), a, b]
                for name, coords, a, b in self.mismatches[:10]
            ],
        }
        if self.cross_checked:
            data["cross_checked"] = {
                name: rep.to_json()
                for name, rep in self.cross_checked.items()
                if rep is not self
            }
        return data

    def raise_on_failure(self) -> "VerificationReport":
        if not self.communication_free:
            raise AssertionError(
                f"{self.remote_accesses} remote accesses in a supposedly "
                "communication-free plan"
            )
        if not self.equal:
            raise AssertionError(
                f"parallel result differs from sequential: "
                f"{self.mismatches[:5]} (showing up to 5)"
            )
        return self


def _verify_plan(
    plan: PartitionPlan,
    scalars: Optional[Mapping[str, float]] = None,
    initial: Optional[dict[str, DataSpace]] = None,
    block_to_pid: Optional[Mapping[int, int]] = None,
    backend: Optional[str] = None,
    chaos: Optional[object] = None,
    options: Optional[object] = None,
) -> VerificationReport:
    """Run sequential and parallel executions and compare final arrays.

    ``backend`` selects the parallel execution engine; ``"all"``
    cross-checks every available backend (see
    :func:`cross_check_backends`).  ``chaos``/``options`` are forwarded
    to :func:`~repro.runtime.parallel.run_parallel` -- verifying under
    an active fault plan is exactly the crashed-and-retried ==
    undisturbed certification.
    """
    if options is not None:
        backend = backend or options.backend
        chaos = chaos if chaos is not None else options.chaos
    if backend == "all":
        return cross_check_backends(plan, scalars=scalars, initial=initial,
                                    block_to_pid=block_to_pid, chaos=chaos)
    tracer = current_tracer()
    with tracer.span("verify.plan", category="runtime",
                     nest=plan.nest.name or "<anon>",
                     backend=backend or "default") as vsp:
        if initial is None:
            initial = make_arrays(plan.model)
        seq_arrays = {name: ds.copy() for name, ds in initial.items()}
        run_sequential(plan.nest, seq_arrays, scalars=scalars,
                       space=plan.model.space)

        result: ParallelResult = _run_parallel(
            plan, initial=initial, scalars=scalars, block_to_pid=block_to_pid,
            backend=backend, chaos=chaos,
        )
        with tracer.span("runtime.merge", category="runtime"):
            merged = merge_copies(result, initial)

        mismatches: list[tuple[str, tuple[int, ...], float, float]] = []
        with tracer.span("verify.compare", category="runtime"):
            for name, ds in seq_arrays.items():
                other = merged[name]
                for coords in ds.coords_iter():
                    a, b = ds[coords], other[coords]
                    if a != b:
                        mismatches.append((name, tuple(coords), a, b))

        report = VerificationReport(
            plan=plan,
            equal=not mismatches,
            remote_accesses=result.remote_accesses,
            num_blocks=plan.num_blocks,
            executed_iterations=result.executed_iterations,
            skipped_computations=result.skipped_computations,
            mismatches=mismatches,
            backend=result.backend,
        )
        vsp.set(ok=report.ok, backend=report.backend,
                mismatches=len(mismatches),
                remote_accesses=report.remote_accesses)
        reg = current_registry()
        reg.inc("verify.runs")
        reg.set("verify.mismatches", len(mismatches))
        reg.set("verify.ok", int(report.ok))
        return report


def cross_check_backends(
    plan: PartitionPlan,
    scalars: Optional[Mapping[str, float]] = None,
    initial: Optional[dict[str, DataSpace]] = None,
    block_to_pid: Optional[Mapping[int, int]] = None,
    chaos: Optional[object] = None,
) -> VerificationReport:
    """Verify the plan on *every* available backend.

    Each backend's merged arrays are compared against the sequential
    golden model; additionally all backends must produce identical
    write stamps (the merge inputs), so agreement is bit-for-bit, not
    just value-equal.  Returns the interpreter's report with
    ``cross_checked`` filled in; ``ok`` is True only if every backend
    passed and agreed.
    """
    from repro.runtime.engine import available_backends

    if initial is None:
        initial = make_arrays(plan.model)
    reports: dict[str, VerificationReport] = {}
    stamps: dict[str, dict] = {}
    for name in available_backends():
        result = _run_parallel(plan, initial=initial, scalars=scalars,
                               block_to_pid=block_to_pid, backend=name,
                               chaos=chaos)
        stamps[name] = result.write_stamps
        reports[name] = _verify_plan(plan, scalars=scalars, initial=initial,
                                     block_to_pid=block_to_pid, backend=name,
                                     chaos=chaos)
    main = reports["interp"]
    main.cross_checked = reports
    golden_stamps = stamps["interp"]
    for name, report in reports.items():
        if stamps[name] != golden_stamps or not report.ok:
            main.equal = main.equal and report.equal
            main.remote_accesses = max(main.remote_accesses,
                                       report.remote_accesses)
            if stamps[name] != golden_stamps:
                main.mismatches.append(
                    (f"<write-stamps:{name}>", (), 0.0, 0.0))
                main.equal = False
    return main


def verify_plan(*args, **kwargs) -> VerificationReport:
    """Deprecated free-function entry point.

    Thin shim over the real implementation, kept for source
    compatibility; new code should verify through
    :class:`repro.api.Session` (``Session(nest).verify()``).  See
    ``docs/API.md`` for the migration map.
    """
    import warnings

    warnings.warn(
        "verify_plan() is deprecated; use repro.api.Session(...).verify() "
        "(see docs/API.md)", DeprecationWarning, stacklevel=2)
    return _verify_plan(*args, **kwargs)
