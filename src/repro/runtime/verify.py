"""End-to-end verification: parallel == sequential, with zero communication.

:func:`verify_plan` is the strongest check in the repository: it runs
the sequential golden model and the partitioned parallel execution from
identical initial data, merges the replicated copies, and compares
final array contents bit-for-bit, while also asserting that not a
single remote access occurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.plan import PartitionPlan
from repro.runtime.arrays import DataSpace, make_arrays
from repro.runtime.merge import merge_copies
from repro.runtime.parallel import ParallelResult, run_parallel
from repro.runtime.seq import run_sequential


@dataclass
class VerificationReport:
    """Outcome of one end-to-end verification."""

    plan: PartitionPlan
    equal: bool
    remote_accesses: int
    num_blocks: int
    executed_iterations: int
    skipped_computations: int
    mismatches: list[tuple[str, tuple[int, ...], float, float]]

    @property
    def communication_free(self) -> bool:
        return self.remote_accesses == 0

    @property
    def ok(self) -> bool:
        return self.equal and self.communication_free

    def raise_on_failure(self) -> "VerificationReport":
        if not self.communication_free:
            raise AssertionError(
                f"{self.remote_accesses} remote accesses in a supposedly "
                "communication-free plan"
            )
        if not self.equal:
            raise AssertionError(
                f"parallel result differs from sequential: "
                f"{self.mismatches[:5]} (showing up to 5)"
            )
        return self


def verify_plan(
    plan: PartitionPlan,
    scalars: Optional[Mapping[str, float]] = None,
    initial: Optional[dict[str, DataSpace]] = None,
    block_to_pid: Optional[Mapping[int, int]] = None,
) -> VerificationReport:
    """Run sequential and parallel executions and compare final arrays."""
    if initial is None:
        initial = make_arrays(plan.model)
    seq_arrays = {name: ds.copy() for name, ds in initial.items()}
    run_sequential(plan.nest, seq_arrays, scalars=scalars, space=plan.model.space)

    result: ParallelResult = run_parallel(
        plan, initial=initial, scalars=scalars, block_to_pid=block_to_pid
    )
    merged = merge_copies(result, initial)

    mismatches: list[tuple[str, tuple[int, ...], float, float]] = []
    for name, ds in seq_arrays.items():
        other = merged[name]
        for coords in ds.coords_iter():
            a, b = ds[coords], other[coords]
            if a != b:
                mismatches.append((name, tuple(coords), a, b))

    return VerificationReport(
        plan=plan,
        equal=not mismatches,
        remote_accesses=result.remote_accesses,
        num_blocks=plan.num_blocks,
        executed_iterations=result.executed_iterations,
        skipped_computations=result.skipped_computations,
        mismatches=mismatches,
    )
