"""The vectorized backend: numpy lock-step execution of all blocks.

Communication-freedom is what makes this legal: the plan's iteration
blocks share no written elements, so *interleaving* blocks cannot
change any value -- only the order of iterations *within* a block
matters.  This backend therefore advances every block one iteration per
"step", evaluating each statement once per step as a whole-array numpy
operation over all active blocks (lanes) at once.  The per-iteration
Python interpreter overhead (env dicts, AST recursion) is replaced by a
handful of vectorized gathers, elementwise float64 ops, and scatters
per step; total Python-level work drops from O(iterations x AST) to
O(steps x statements).

Bit-identity with the interpreter holds because

- numpy elementwise float64 arithmetic is the same IEEE-754 binary64
  arithmetic as Python floats, applied in the same expression-tree
  order (no reassociation, no FMA, no reductions);
- within each lane, iterations execute in the block's sequential
  order (step order == iteration order);
- across lanes, written elements are disjoint, so the interleaving
  cannot matter.

The backend refuses (and falls back to ``compiled``) when a written
array has replicated elements across data blocks, when a subscript is
not integral-affine, or when the dense bounding-box grids would be
unreasonably large.  Remote accesses -- the thing ``verify`` exists to
rule out -- are detected *up front*: access coordinates depend only on
the iteration sets, so every gather/scatter is checked against the
per-lane allocation masks before anything executes, and the first
violation in interpreter order raises the same
:class:`~repro.machine.memory.RemoteAccessError`.
"""

from __future__ import annotations

import weakref
from itertools import chain
from typing import Mapping

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, BinOp, Const, Expr, Name, UnaryOp
from repro.machine.memory import RemoteAccessError
from repro.runtime import numpy_compat as npc
from repro.runtime.engine.base import Engine, register_backend

#: dense-grid size caps (elements); beyond these, fall back to compiled
_MAX_GRID = 1 << 22
_MAX_HOLD = 1 << 26


class _Unsupported(ValueError):
    """This plan cannot be vectorized; fall back to the compiled tier."""


def supports_plan(plan) -> bool:
    """Can the lock-step strategy run this plan?

    Written arrays must have no replicated elements (a replicated
    written element would need every copy updated in its own lane's
    order -- the duplicate-data strategy only replicates read-only
    arrays, so in practice this accepts those plans too).
    """
    try:
        _check_plan(plan)
        return True
    except _Unsupported:
        return False


def _check_plan(plan) -> None:
    for name, info in plan.model.arrays.items():
        if info.is_read_only():
            continue
        dblocks = plan.data_blocks.get(name, [])
        total = sum(len(db.elements) for db in dblocks)
        distinct = len({e for db in dblocks for e in db.elements})
        if total != distinct:
            raise _Unsupported(
                f"written array {name} has replicated elements")
    indices = plan.nest.indices
    for stmt in plan.nest.statements:
        for ref in stmt.rhs.array_refs():
            if list(ref.array_refs())[1:]:
                raise _Unsupported("array read inside a subscript")
        for ref in [stmt.lhs] + list(stmt.rhs.array_refs()):
            for sub in ref.subscripts:
                try:
                    ae = affine_of(sub, indices)
                except NotAffineError as exc:
                    raise _Unsupported(str(exc)) from exc
                if not ae.is_integral():
                    raise _Unsupported(
                        f"non-integral subscript on {ref.array}")


class _Grid:
    """Dense bounding-box storage for one array across all lanes."""

    __slots__ = ("lo", "shape", "strides", "vals", "stamps", "hold")

    def __init__(self, np, nlanes: int, ndim: int, carr):
        """``carr`` is an (N, ndim) int64 array of every allocated
        coordinate (any lane), or None when nothing is allocated."""
        if carr is not None and len(carr):
            self.lo = tuple(int(x) for x in carr.min(axis=0))
            hi = tuple(int(x) for x in carr.max(axis=0))
        else:
            self.lo = (0,) * ndim
            hi = (0,) * ndim
        self.shape = tuple(h - l + 1 for l, h in zip(self.lo, hi))
        size = 1
        for s in self.shape:
            size *= s
        if size > _MAX_GRID or nlanes * size > _MAX_HOLD:
            raise _Unsupported(f"grid of {size} elements is too large")
        strides = [1] * ndim
        for d in range(ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        self.strides = tuple(strides)
        self.vals = np.zeros(size, dtype=np.float64)
        self.stamps = np.full(size, -1, dtype=np.int64)
        self.hold = np.zeros((nlanes, size), dtype=bool)

    def flat_of(self, coords: tuple[int, ...]) -> int:
        return sum((c - l) * s
                   for c, l, s in zip(coords, self.lo, self.strides))


def _flatten_coords(np, grid: _Grid, coord_arrays):
    """(clipped flat indices, in-bounds mask) for vectorized coords."""
    inb = None
    flat = None
    for co, lo, sh, stride in zip(coord_arrays, grid.lo, grid.shape,
                                  grid.strides):
        rel = co - lo
        ok = (rel >= 0) & (rel < sh)
        inb = ok if inb is None else (inb & ok)
        part = np.clip(rel, 0, sh - 1) * stride
        flat = part if flat is None else (flat + part)
    return flat, inb


def _coords_of(np, ref: ArrayRef, indices, iters):
    """Per-dimension int64 coordinate arrays of shape (nlanes, steps)."""
    out = []
    for sub in ref.subscripts:
        ae = affine_of(sub, indices)
        co = np.full(iters.shape[:2], int(ae.const), dtype=np.int64)
        for j, a in enumerate(ae.coeffs):
            a = int(a)
            if a:
                co = co + a * iters[:, :, j]
        out.append(co)
    return out


def _build_eval(np, expr: Expr, indices, iters_f, scalars, read_of):
    """A function ``(step, sel) -> float64 array`` over selected lanes,
    evaluating ``expr`` in exactly the interpreter's tree order."""
    if isinstance(expr, Const):
        c = np.float64(float(expr.value))
        return lambda s, sel: c
    if isinstance(expr, Name):
        if expr.ident in indices:
            d = indices.index(expr.ident)
            return lambda s, sel: iters_f[sel, s, d]
        if expr.ident in scalars:
            c = np.float64(float(scalars[expr.ident]))
            return lambda s, sel: c
        raise _Unsupported(f"unbound name {expr.ident!r}")
    if isinstance(expr, UnaryOp):
        f = _build_eval(np, expr.operand, indices, iters_f, scalars, read_of)
        return lambda s, sel: -f(s, sel)
    if isinstance(expr, BinOp):
        lf = _build_eval(np, expr.left, indices, iters_f, scalars, read_of)
        rf = _build_eval(np, expr.right, indices, iters_f, scalars, read_of)
        op = expr.op
        if op == "+":
            return lambda s, sel: lf(s, sel) + rf(s, sel)
        if op == "-":
            return lambda s, sel: lf(s, sel) - rf(s, sel)
        if op == "*":
            return lambda s, sel: lf(s, sel) * rf(s, sel)
        return lambda s, sel: lf(s, sel) / rf(s, sel)
    if isinstance(expr, ArrayRef):
        vals, flat = read_of(expr)
        return lambda s, sel: vals[flat[sel, s]]
    raise _Unsupported(f"cannot vectorize {expr!r}")


def _has_division(expr: Expr) -> bool:
    if isinstance(expr, BinOp):
        return (expr.op == "/" or _has_division(expr.left)
                or _has_division(expr.right))
    if isinstance(expr, UnaryOp):
        return _has_division(expr.operand)
    return False


#: id(plan) -> (weakref to the plan, geometry dict).  A side-car cache
#: (rather than an attribute on the plan) keeps plans pickleable; the
#: weakref both guards against id reuse and evicts dead entries.
_GEOM_CACHE: dict[int, tuple] = {}


def _geometry(np, plan):
    """Data-independent execution geometry for a plan, cached per plan.

    Everything here depends only on the plan's iteration blocks, live
    set and iteration space -- never on array values or on what the
    memories hold -- so repeat runs of the same plan (the common
    verify/benchmark pattern) skip straight to grid seeding.  The
    allocation-dependent parts (hold masks, grid values, the
    remote-access check) are rebuilt on every run.
    """
    key = id(plan)
    hit = _GEOM_CACHE.get(key)
    if hit is not None:
        ref, geom = hit
        if ref() is plan and geom["np"] is np:
            return geom

    nest = plan.nest
    space = plan.model.space
    indices = nest.indices
    stmts = nest.statements
    nstmts = len(stmts)
    lanes = plan.blocks
    nlanes = len(lanes)
    if nlanes == 0:
        return None
    steps = max(len(b.iterations) for b in lanes)
    if steps == 0:
        return None
    depth = nest.depth

    # lane-major iteration table + active mask (one bulk conversion)
    counts = np.fromiter((len(b.iterations) for b in lanes), np.int64,
                         count=nlanes)
    total = int(counts.sum())
    all_iters = np.fromiter(
        chain.from_iterable(chain.from_iterable(b.iterations)
                            for b in lanes),
        np.int64, count=total * depth).reshape(-1, depth)
    lane_rep = np.repeat(np.arange(nlanes), counts)
    step_pos = np.arange(total) - \
        np.repeat(np.cumsum(counts) - counts, counts)
    iters = np.zeros((nlanes, steps, depth), dtype=np.int64)
    iters[lane_rep, step_pos, :] = all_iters
    active = np.zeros((nlanes, steps), dtype=bool)
    active[lane_rep, step_pos] = True
    iters_f = iters.astype(np.float64)

    # execution masks: active iterations restricted to live comps
    live = plan.live
    exec_mask = []
    for k in range(nstmts):
        if live is None:
            exec_mask.append(active)
        else:
            m = np.zeros((nlanes, steps), dtype=bool)
            for lane, b in enumerate(lanes):
                for s, it in enumerate(b.iterations):
                    if (k, it) in live:
                        m[lane, s] = True
            exec_mask.append(m)

    # write stamps: closed-form rank when the space is rectangular
    rect = space.rank_strides()
    if rect is not None:
        los, strides = rect
        rank = np.zeros((nlanes, steps), dtype=np.int64)
        for d, (lo, st) in enumerate(zip(los, strides)):
            if st:
                rank = rank + (iters[:, :, d] - lo) * st
    else:
        rank = np.zeros((nlanes, steps), dtype=np.int64)
        for lane, b in enumerate(lanes):
            for s, it in enumerate(b.iterations):
                rank[lane, s] = space.rank_of(it)

    ndims = {}
    for stmt in stmts:
        for ref in [stmt.lhs] + list(stmt.rhs.array_refs()):
            ndims[ref.array] = len(ref.subscripts)

    # per-statement access coordinates, reads in the same pre-order
    # left-to-right traversal _build_eval uses
    stmt_plans = []
    for stmt in stmts:
        reads = [(ref.array, _coords_of(np, ref, indices, iters))
                 for ref in stmt.rhs.array_refs()]
        write = (stmt.lhs.array, _coords_of(np, stmt.lhs, indices, iters))
        stmt_plans.append((reads, write, _has_division(stmt.rhs)))

    any_exec = exec_mask[0]
    for k in range(1, nstmts):
        any_exec = any_exec | exec_mask[k]

    geom = {
        "np": np,
        "nlanes": nlanes,
        "steps": steps,
        "iters_f": iters_f,
        "exec_mask": exec_mask,
        "rank": rank,
        "ndims": ndims,
        "stmts": stmt_plans,
        "nreads": [len(r) for r, _, _ in stmt_plans],
        "written": sorted({stmt.lhs.array for stmt in stmts}),
        "exec_counts": [m.sum(axis=1) for m in exec_mask],
        "active_counts": active.sum(axis=1),
        "executed_total": int(any_exec.sum()),
    }
    _GEOM_CACHE[key] = (weakref.ref(plan), geom)
    weakref.finalize(plan, _GEOM_CACHE.pop, key, None)
    return geom


class VectorizedEngine(Engine):
    """Lock-step whole-array execution of all blocks at once (numpy)."""

    name = "vectorized"
    fallback = "compiled"

    @classmethod
    def is_available(cls) -> bool:
        return npc.have_numpy()

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # a sequential nest may carry loop dependences; the compiled
        # tier preserves exact statement order
        self.delegate().run_nest(nest, arrays, scalars, space)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.obs.trace import current_tracer

        np = npc.np
        if np is None or not strict:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        try:
            # all lanes advance together, so the whole sweep is one span
            # (per-block spans would all cover the same wall time);
            # lanes/steps attributes record the geometry instead
            with current_tracer().span(
                    "engine.lockstep", category="engine", backend=self.name,
                    blocks=len(plan.blocks)) as sp:
                self._run_lockstep(np, plan, memories, result, scalars)
                sp.set(executed_iterations=result.executed_iterations,
                       remote_accesses=result.remote_accesses,
                       statements=len(plan.nest.statements))
        except _Unsupported:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)

    # -- the lock-step machine --------------------------------------------
    def _run_lockstep(self, np, plan, memories, result,
                      scalars: Mapping[str, float]) -> None:
        _check_plan(plan)
        geom = _geometry(np, plan)
        if geom is None:
            return
        nest = plan.nest
        stmts = nest.statements
        nstmts = len(stmts)
        lanes = plan.blocks
        nlanes = geom["nlanes"]
        steps = geom["steps"]
        iters_f = geom["iters_f"]
        exec_mask = geom["exec_mask"]
        rank = geom["rank"]
        live = plan.live

        # dense grids seeded from the (already allocated) local memories.
        # Grid *geometry* (bounding box, flat indices, hold masks) depends
        # only on which elements each block allocates -- i.e. on the
        # plan's data blocks -- so it is cached per array, keyed on the
        # identity of the DataBlock objects (their element sets are
        # frozen, and allocation order is deterministic per object).
        # Values and stamps are always rebuilt from the memories.
        gridtpl = geom.setdefault("gridtpl", {})
        grids: dict[str, _Grid] = {}
        for name in nest.array_names():
            dblocks = plan.data_blocks.get(name, [])
            stores = [memories[b.index].values.get(name, {}) for b in lanes]
            tpl = gridtpl.get(name)
            if tpl is not None:
                snap, proto, flats, total = tpl
                if len(snap) != len(dblocks) or \
                        any(a is not b for a, b in zip(snap, dblocks)):
                    tpl = None
            if tpl is None:
                ndim = geom["ndims"][name]
                total = sum(len(d) for d in stores)
                carr = None
                if total:
                    carr = np.fromiter(
                        chain.from_iterable(chain.from_iterable(d)
                                            for d in stores),
                        np.int64, count=total * ndim).reshape(-1, ndim)
                proto = _Grid(np, nlanes, ndim, carr)
                flats = None
                if carr is not None:
                    flats = (carr - np.array(proto.lo, dtype=np.int64)) @ \
                        np.array(proto.strides, dtype=np.int64)
                    lrep = np.repeat(
                        np.arange(nlanes),
                        np.fromiter((len(d) for d in stores), np.int64,
                                    count=nlanes))
                    proto.hold[lrep, flats] = True
                gridtpl[name] = (list(dblocks), proto, flats, total)
            size = proto.vals.shape[0]
            g = object.__new__(_Grid)
            g.lo, g.shape, g.strides = proto.lo, proto.shape, proto.strides
            g.hold = proto.hold  # read-only after construction
            g.vals = np.zeros(size, dtype=np.float64)
            g.stamps = np.full(size, -1, dtype=np.int64)
            if flats is not None:
                g.vals[flats] = np.fromiter(
                    chain.from_iterable(d.values() for d in stores),
                    np.float64, count=total)
            grids[name] = g

        # per-statement access plans (+ up-front remote-access check:
        # access coordinates are data-independent, so every gather and
        # scatter can be validated against the allocation masks before
        # anything executes)
        lane_idx = np.arange(nlanes)[:, None]
        violation = None  # (lane, step, stmt, refpos, array, CO)

        def check(k, refpos, array, co, flat, inb):
            nonlocal violation
            bad = exec_mask[k] & ~(inb & grids[array].hold[lane_idx, flat])
            if bad.any():
                first = int(np.argmax(bad))
                cand = divmod(first, steps) + (k, refpos, array, co)
                if violation is None or cand[:4] < violation[:4]:
                    violation = cand

        compute = []
        for k, (reads, (warray, wco), divides) in enumerate(geom["stmts"]):
            read_flats = []
            for p, (array, co) in enumerate(reads):
                flat, inb = _flatten_coords(np, grids[array], co)
                check(k, p, array, co, flat, inb)
                read_flats.append((grids[array].vals, flat))
            wflat, winb = _flatten_coords(np, grids[warray], wco)
            check(k, len(reads), warray, wco, wflat, winb)
            pending = iter(read_flats)
            fn = _build_eval(np, stmts[k].rhs, nest.indices, iters_f,
                             scalars, lambda ref: next(pending))
            compute.append((fn, grids[warray], wflat, divides))

        if violation is not None:
            lane, s, k, refpos, array, co = violation
            mem = memories[lanes[lane].index]
            coords = tuple(int(c[lane, s]) for c in co)
            is_write = refpos == geom["nreads"][k]
            mem.note_remote(is_write=is_write)
            raise RemoteAccessError(mem.pid, array, coords,
                                    is_write=is_write)

        # the lock-step sweep
        for s in range(steps):
            for k in range(nstmts):
                sel = np.nonzero(exec_mask[k][:, s])[0]
                if sel.size == 0:
                    continue
                fn, grid, wflat, divides = compute[k]
                if divides:
                    with np.errstate(divide="raise", invalid="raise"):
                        try:
                            value = fn(s, sel)
                        except FloatingPointError:
                            raise ZeroDivisionError("float division by zero") \
                                from None
                else:
                    value = fn(s, sel)
                wf = wflat[sel, s]
                grid.vals[wf] = value
                grid.stamps[wf] = rank[sel, s] * nstmts + k

        # scatter back: values, stamps, counters
        exec_counts = geom["exec_counts"]
        active_counts = geom["active_counts"]
        for lane, b in enumerate(lanes):
            mem = memories[b.index]
            for name in geom["written"]:
                store = mem.values.get(name)
                if not store:
                    continue
                g = grids[name]
                for c in store:
                    f = g.flat_of(c)
                    stamp = int(g.stamps[f])
                    if stamp >= 0:
                        store[c] = float(g.vals[f])
                        result.write_stamps[(b.index, name, c)] = stamp
            for k in range(nstmts):
                n = int(exec_counts[k][lane])
                mem.writes += n
                mem.reads += n * geom["nreads"][k]
                if live is not None:
                    result.skipped_computations += \
                        int(active_counts[lane]) - n
        result.executed_iterations += geom["executed_total"]


register_backend(VectorizedEngine, aliases=("numpy", "vector", "simd"))
