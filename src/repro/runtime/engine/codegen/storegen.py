"""Codegen store kernels: specialized source for blockstore workers.

The shared-memory block store lays every (array, block) region out in
sorted coordinate order (:mod:`repro.runtime.blockstore.layout`).  When
a region covers its full bounding box, sorted order *is* row-major
order, so a reference's subscripts fold into block-local flat
arithmetic -- ``const + sum(coeff_k * i_k)`` -- with the constants and
coefficients derived from the region's rectangle.  Those region
rectangles vary per block, so they travel as a per-block argument
tuple (built worker-side from the shared layout, cached per block)
while the kernel *source* depends only on the nest, scalars, liveness
and rank strides: one kernel per plan shape, every block reuses it.

The parent prepares the kernel once per run (emitting into the on-disk
cache) and ships only its cache key in the
:class:`~repro.runtime.blockstore.store.StoreDescriptor`; workers
attach by key -- a warm worker process takes the in-memory kernel, a
fresh one unmarshals from disk, and only a worker with a cold cache
*and* a missing disk entry re-emits from its unpickled plan.  The key
is only ever set after the plan passes the communication audit's
zero-cross-access certificate, which is what licenses dropping the
dict-lookup ownership checks of the generic store kernel; the dict
kernel remains the fallback for non-rectangular regions.

The emitted function mirrors ``compile_store_kernel``'s contract
(``(executed_iterations, per-statement counts)`` over the private
block buffers, reads wrapped in ``float(...)`` for binary64 parity,
stamps ``rank * nstmts + k``) minus the ``idx``/``remote`` machinery
the certificate makes unnecessary.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional

from repro.lang.ast import ArrayRef, LoopNest
from repro.lang.fingerprint import nest_canonical_form
from repro.runtime.engine.codegen.geometry import (
    CodegenUnsupported,
    ref_affine,
)
from repro.runtime.engine.compiled import (
    _iteration_prelude,
    _value_indices,
    _value_src,
)

STORE_KERNEL_NAME = "_cg_store_kernel"

_VERSION = "cgs1"

#: nest -> its reference table (plans with thousands of tiny blocks
#: would otherwise re-derive the affines per block)
_REF_TABLES: dict[LoopNest, list] = {}


def ref_table(nest: LoopNest) -> list[tuple[str, tuple, tuple]]:
    """Deduplicated references: (array, coeff matrix, const vector).

    Emission and the worker-side argument builder share this exact
    enumeration order -- it defines the layout of the per-block
    argument tuple.
    """
    hit = _REF_TABLES.get(nest)
    if hit is not None:
        return hit
    indices = nest.indices
    out: list[tuple[str, tuple, tuple]] = []
    seen: dict[tuple, int] = {}
    for stmt in nest.statements:
        for ref in [stmt.lhs] + list(stmt.rhs.array_refs()):
            matrix, consts = ref_affine(ref, indices)
            key = (ref.array, matrix, consts)
            if key not in seen:
                seen[key] = len(out)
                out.append(key)
    _REF_TABLES[nest] = out
    return out


def _used_dims(matrix: tuple) -> list[int]:
    """Loop-index positions with any nonzero coefficient in the ref."""
    if not matrix:
        return []
    return [k for k in range(len(matrix[0]))
            if any(row[k] for row in matrix)]


def store_kernel_key(nest: LoopNest, scalars: Mapping[str, float],
                     has_live: bool, rank_rect) -> str:
    h = hashlib.sha256()
    for part in (_VERSION, nest_canonical_form(nest),
                 repr(tuple(sorted(scalars.items()))),
                 repr(bool(has_live)), repr(rank_rect)):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def emit_store_kernel(nest: LoopNest, scalars: Mapping[str, float],
                      has_live: bool, rank_rect) -> str:
    """``fn(_bindex, _iters, _rect, _vals, _stamps, _live, _rank_of)``.

    ``_rect`` is the flat per-block tuple: for each entry of
    :func:`ref_table`, its block-local constant followed by one
    coefficient per used loop dimension.
    """
    indices = nest.indices
    nstmts = len(nest.statements)
    refs = ref_table(nest)
    slot_of: dict[tuple, int] = {key: j for j, key in enumerate(refs)}

    unpack: list[str] = []
    for j, (_, matrix, _) in enumerate(refs):
        unpack.append(f"_c{j}")
        unpack += [f"_a{j}_{k}" for k in _used_dims(matrix)]

    def slot_src(ref: ArrayRef) -> str:
        from repro.runtime.engine.codegen.geometry import ref_affine as ra

        matrix, consts = ra(ref, indices)
        j = slot_of[(ref.array, matrix, consts)]
        terms = [f"_c{j}"]
        for k in _used_dims(matrix):
            terms.append(f"_a{j}_{k}*i{k}")
        return " + ".join(terms)

    def read_src(ref: ArrayRef) -> str:
        return f"float(_vals[{slot_src(ref)}])"

    if rank_rect is not None:
        los, strides = rank_rect
        terms = [f"(i{k} - {lo}) * {s}" if s != 1 else f"(i{k} - {lo})"
                 for k, (lo, s) in enumerate(zip(los, strides)) if s != 0]
        rank_src = " + ".join(terms) or "0"
    else:
        rank_src = "_rank_of(_it)"

    lines = [f"def {STORE_KERNEL_NAME}(_bindex, _iters, _rect, _vals, "
             "_stamps, _live, _rank_of):"]
    lines.append(f"    {', '.join(unpack)}{',' if len(unpack) == 1 else ''}"
                 " = _rect")
    for k in range(nstmts):
        lines.append(f"    _n{k} = 0")
    lines.append("    _ex = 0")
    lines.append("    for _it in _iters:")
    ind = "        "
    for pre in _iteration_prelude(nest.depth, _value_indices(nest)):
        lines.append(ind + pre)
    lines.append(ind + f"_r = ({rank_src}) * {nstmts}")
    if has_live:
        lines.append(ind + "_any = False")
    for k, stmt in enumerate(nest.statements):
        sind = ind
        if has_live:
            lines.append(ind + f"if ({k}, _it) in _live:")
            sind = ind + "    "
        val = _value_src(stmt.rhs, indices, scalars, read_src)
        lines += [
            sind + f"_w = {slot_src(stmt.lhs)}",
            sind + f"_vals[_w] = {val}",
            sind + f"_stamps[_w] = _r + {k}",
            sind + f"_n{k} += 1",
        ]
        if has_live:
            lines.append(sind + "_any = True")
    if has_live:
        lines += [ind + "if _any:", ind + "    _ex += 1"]
    else:
        lines.append(ind + "_ex += 1")
    counts = ", ".join(f"_n{k}" for k in range(nstmts))
    lines.append(f"    return _ex, ({counts},)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# region rectangles and per-block arguments
# ---------------------------------------------------------------------------

def regions_rectangular(layout) -> bool:
    """True iff every (array, block) region fills its bounding box
    (sorted order over a full box is row-major order)."""
    for key, (off, cnt) in layout.regions.items():
        if not cnt:
            continue
        order = layout.order[key]
        lo, hi = order[0], order[-1]
        size = 1
        for l, h in zip(lo, hi):
            size *= h - l + 1
        if size != cnt:
            return False
    return True


def block_rect_args(layout, nest: LoopNest, bindex: int) -> tuple:
    """The per-block ``_rect`` tuple, block-local (matches the private
    buffer the worker computes into)."""
    refs = ref_table(nest)
    info: dict[str, tuple] = {}
    loff = 0
    for name in layout.arrays:
        _, cnt = layout.regions[(name, bindex)]
        if cnt:
            order = layout.order[(name, bindex)]
            lo, hi = order[0], order[-1]
            shape = tuple(h - l + 1 for l, h in zip(lo, hi))
            strides = [1] * len(shape)
            for d in range(len(shape) - 2, -1, -1):
                strides[d] = strides[d + 1] * shape[d + 1]
            info[name] = (lo, tuple(strides), loff)
        else:
            info[name] = (None, None, loff)
        loff += cnt
    args: list[int] = []
    for array, matrix, consts in refs:
        lo, strides, aoff = info[array]
        if lo is None:
            # empty region: the certificate guarantees no access ever
            # evaluates this ref's slot in this block
            args += [0] + [0] * len(_used_dims(matrix))
            continue
        const = aoff
        coeffs = [0] * (len(matrix[0]) if matrix else 0)
        for d, (row, c) in enumerate(zip(matrix, consts)):
            const += (c - lo[d]) * strides[d]
            for k, a in enumerate(row):
                coeffs[k] += a * strides[d]
        args += [const] + [coeffs[k] for k in _used_dims(matrix)]
    return tuple(args)


def prepare_store_kernel(plan, scalars: Mapping[str, float]) -> Optional[str]:
    """Parent-side: emit + persist the codegen store kernel, or None.

    Returns the cache key to ship in the descriptor, or None when the
    plan's regions are not rectangular, a reference cannot be lowered,
    or the communication audit refuses the certificate.
    """
    from repro.obs.metrics import current_registry
    from repro.runtime.blockstore.layout import layout_for
    from repro.runtime.engine.codegen.engine import _certified, _geometry_for
    from repro.runtime.engine.codegen.engine import load_kernel

    nest = plan.nest
    try:
        layout = layout_for(plan)
        if not regions_rectangular(layout):
            raise CodegenUnsupported("store regions are not rectangular")
        ref_table(nest)
        geo = _geometry_for(plan)
    except CodegenUnsupported:
        current_registry().inc("engine.codegen.store.unsupported")
        return None
    if not _certified(plan, geo):
        current_registry().inc("engine.codegen.store.uncertified")
        return None
    has_live = plan.live is not None
    rank_rect = plan.model.space.rank_strides()
    key = store_kernel_key(nest, scalars, has_live, rank_rect)
    load_kernel(key,
                lambda: emit_store_kernel(nest, scalars, has_live,
                                          rank_rect),
                label="store", fn_name=STORE_KERNEL_NAME)
    return key


def attach_store_kernel(key: str, plan, scalars: Mapping[str, float]):
    """Worker-side: the raw kernel for ``key`` (memory -> disk -> emit)."""
    from repro.runtime.engine.codegen.engine import load_kernel

    nest = plan.nest
    has_live = plan.live is not None
    rank_rect = plan.model.space.rank_strides()
    return load_kernel(key,
                       lambda: emit_store_kernel(nest, scalars, has_live,
                                                 rank_rect),
                       label="store", fn_name=STORE_KERNEL_NAME)
