"""The codegen engine: specialized source per (plan, geometry).

The top engine tier.  ``run_blocks`` builds (and caches, per plan) a
*program*: the plan's geometry, its communication-audit certificate,
the per-block argument tuples, the seed/scatter coordinate tables and
the compiled kernel itself.  Kernels come from a three-level cache:

1. in-process, keyed by the rename-invariant fingerprint + geometry
   digest (``engine.codegen.cache.memory.hit``);
2. the on-disk :mod:`~repro.runtime.engine.codegen.diskcache` -- a
   warm process unmarshals the stored code object and skips emit *and*
   compile (zero ``engine.codegen.emit``/``compile`` spans);
3. fresh emission (span ``engine.codegen.emit``) and compilation (span
   ``engine.codegen.compile``), persisted for the next process.

Anything the specializer cannot take (non-affine subscripts, written
replicas, oversized grids, a failed certificate) delegates to the
compiled tier -- in particular a plan with *actual* cross-block
accesses is never run unchecked, so a sabotaged plan raises the very
same :class:`~repro.machine.memory.RemoteAccessError` the interpreter
raises first, through the compiled tier's per-access slow path.

``REPRO_CODEGEN_CHECKS=1`` runs the guarded kernel variant instead:
every access is verified against the block's owned-slot sets, which is
the debugging escape hatch for distrusted certificates.
"""

from __future__ import annotations

import marshal
import os
from typing import Callable, Mapping, Optional

from repro.runtime.engine.base import Engine, register_backend
from repro.runtime.engine.codegen import emit
from repro.runtime.engine.codegen.diskcache import get_disk_cache
from repro.runtime.engine.codegen.geometry import (
    CodegenUnsupported,
    certify_zero_cross,
    check_nest,
    check_written_partitioned,
    grid_specs,
    rect_block_shape,
)
from repro.runtime.engine.compiled import _reads_per_statement

#: Set to 1 to run the guarded (ownership-checked) kernel variant.
CHECKS_ENV_VAR = "REPRO_CODEGEN_CHECKS"

#: kernel key -> compiled function (the in-process tier of the cache)
_KERNELS: dict[str, Callable] = {}

#: id(plan) -> (weakref, geometry dict); plan-lifetime side-car
_GEOMETRY: dict[int, tuple] = {}

#: (id(plan), scalars key, checks) -> program dict
_PROGRAMS: dict[tuple, dict] = {}


def checks_enabled() -> bool:
    return os.environ.get(CHECKS_ENV_VAR, "").strip() not in ("", "0")


def load_kernel(key: str, emit_fn: Callable[[], str],
                label: str = "kernel",
                fn_name: Optional[str] = None) -> Callable:
    """The kernel for ``key`` through the memory -> disk -> emit chain."""
    from repro.obs.metrics import current_registry
    from repro.obs.trace import current_tracer

    reg = current_registry()
    fn = _KERNELS.get(key)
    if fn is not None:
        reg.inc("engine.codegen.cache.memory.hit")
        return fn
    tracer = current_tracer()
    disk = get_disk_cache()
    code = src = None
    if disk is not None:
        code, src = disk.load(key)
    emitted = False
    if code is None:
        if src is None:
            with tracer.span("engine.codegen.emit", category="engine",
                             kernel=label, key=key[:12]):
                src = emit_fn()
            emitted = True
            reg.inc("engine.codegen.emitted")
        with tracer.span("engine.codegen.compile", category="engine",
                         kernel=label, key=key[:12]):
            code = compile(src, f"<repro-codegen:{key[:12]}>", "exec")
        if disk is not None and emitted:
            disk.store(key, src, marshal.dumps(code))
    ns: dict = {}
    exec(code, ns)
    fn = ns[fn_name or emit.KERNEL_NAME]
    _KERNELS[key] = fn
    return fn


# ---------------------------------------------------------------------------
# per-plan geometry and program side-cars
# ---------------------------------------------------------------------------

def _geometry_for(plan) -> dict:
    """Geometry, block-argument and seed/scatter tables (plan-cached).

    Raises :class:`CodegenUnsupported` when the plan cannot be
    specialized; the *negative* outcome is cached too (re-raising is
    cheap, re-deriving it is not).
    """
    import weakref

    key = id(plan)
    hit = _GEOMETRY.get(key)
    if hit is not None and hit[0]() is plan:
        geo = hit[1]
        if "unsupported" in geo:
            raise CodegenUnsupported(geo["unsupported"])
        return geo
    geo: dict = {}
    try:
        ref = weakref.ref(plan)
        weakref.finalize(plan, _release_plan, key)
        _GEOMETRY[key] = (ref, geo)
    except TypeError:  # pragma: no cover - plans are always weakref-able
        pass
    try:
        geo.update(_build_geometry(plan))
    except CodegenUnsupported as exc:
        geo["unsupported"] = exc.reason
        raise
    return geo


def _release_plan(key: int) -> None:
    _GEOMETRY.pop(key, None)
    for pkey in [k for k in _PROGRAMS if k[0] == key]:
        del _PROGRAMS[pkey]


def _build_geometry(plan) -> dict:
    nest = plan.nest
    space = plan.model.space
    written = check_written_partitioned(plan)
    specs = grid_specs(plan)
    check_nest(nest, specs)
    rank_rect = space.rank_strides()
    rect = None
    if plan.live is None and rank_rect is not None:
        rect = rect_block_shape(plan)
    nstmts = len(nest.statements)

    # coords -> flat slot per array, shared by seed and scatter tables
    flats: dict[str, dict] = {}
    for name, spec in specs.items():
        if not spec.size:
            flats[name] = {}
            continue
        lo, strides = spec.lo, spec.strides

        def flat(c, lo=lo, strides=strides):
            s = 0
            for d, v in enumerate(c):
                s += (v - lo[d]) * strides[d]
            return s

        flats[name] = flat

    seed: list[tuple[str, int, list]] = []
    for name, spec in specs.items():
        flat = flats[name]
        seen: set = set()
        for db in plan.data_blocks[name]:
            pairs = [(c, flat(c)) for c in db.elements if c not in seen]
            if pairs:
                seen.update(c for c, _ in pairs)
                seed.append((name, db.block_index, pairs))
    scatter: list[tuple[int, str, list]] = []
    for b in plan.blocks:
        for name in written:
            flat = flats[name]
            db = plan.data_blocks[name][b.index]
            if db.elements:
                scatter.append((b.index, name,
                                [(c, flat(c)) for c in db.elements]))

    if rect is not None:
        args = [tuple(b.iterations[0])
                + (space.rank_of(b.iterations[0]) * nstmts,)
                for b in plan.blocks]
    else:
        args = [(b.index, b.iterations) for b in plan.blocks]

    own: Optional[list] = None  # built lazily, only for checked kernels
    return {
        "specs": specs,
        "rect": rect,
        "rank_rect": rank_rect,
        "args": args,
        "seed": seed,
        "scatter": scatter,
        "written": tuple(n for n in specs if n in written),
        "nreads": _reads_per_statement(nest),
        "nstmts": nstmts,
        "flats": flats,
        "own": own,
        "certified": None,  # resolved on first uncheck(ed) run
    }


def _certified(plan, geo: dict) -> bool:
    from repro.obs.metrics import current_registry
    from repro.obs.trace import current_tracer

    if geo["certified"] is None:
        with current_tracer().span("engine.codegen.certify",
                                   category="engine",
                                   blocks=len(plan.blocks)):
            geo["certified"] = certify_zero_cross(plan)
        current_registry().inc(
            "engine.codegen.certified" if geo["certified"]
            else "engine.codegen.uncertified")
    return geo["certified"]


def _own_tables(plan, geo: dict) -> list:
    """Per-block ``{array: owned-slot frozenset}`` for checked kernels."""
    if geo["own"] is None:
        own = []
        for b in plan.blocks:
            per = {}
            for name in geo["specs"]:
                flat = geo["flats"][name]
                db = plan.data_blocks[name][b.index]
                per[name] = frozenset(flat(c) for c in db.elements)
            own.append((b.index, b.iterations, per))
        geo["own"] = own
    return geo["own"]


def program_for(plan, scalars: Mapping[str, float],
                checks: bool) -> dict:
    """The runnable program for (plan, scalars, checks) -- cached."""
    skey = tuple(sorted(scalars.items()))
    pkey = (id(plan), skey, checks)
    prog = _PROGRAMS.get(pkey)
    if prog is not None:
        return prog
    geo = _geometry_for(plan)
    nest = plan.nest
    has_live = plan.live is not None
    rect = geo["rect"] if not checks else None
    if rect is not None:
        mode = "rect"
        key = emit.kernel_key(mode, nest, scalars, geo["specs"], rect,
                              geo["rank_rect"], has_live)
        fn = load_kernel(
            key, lambda: emit.emit_rect_kernel(
                nest, scalars, geo["specs"], rect, geo["rank_rect"]))
    else:
        mode = "checked" if checks else "list"
        key = emit.kernel_key(mode, nest, scalars, geo["specs"], None,
                              geo["rank_rect"], has_live)
        fn = load_kernel(
            key, lambda: emit.emit_list_kernel(
                nest, scalars, geo["specs"], geo["rank_rect"], has_live,
                checks=checks))
    prog = {"mode": mode, "key": key, "fn": fn, "geo": geo}
    _PROGRAMS[pkey] = prog
    return prog


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class CodegenEngine(Engine):
    """Per-plan specialized kernels over flat grids, checks elided
    under the communication audit's certificate."""

    name = "codegen"
    fallback = "compiled"

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # sequential whole-nest runs are already statement-specialized
        # by the compiled tier; the codegen win is per-block execution
        self.delegate().run_nest(nest, arrays, scalars, space)

    def _delegate_blocks(self, reason, plan, memories, result, initial,
                         scalars, strict) -> None:
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        current_registry().inc("engine.codegen.delegated")
        current_tracer().event("engine.codegen.delegated",
                               category="engine", reason=reason)
        self.delegate().run_blocks(plan, memories, result, initial,
                                   scalars, strict=strict)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        if not strict or not plan.blocks:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        checks = checks_enabled()
        try:
            prog = program_for(plan, dict(scalars), checks)
        except CodegenUnsupported as exc:
            self._delegate_blocks(exc.reason, plan, memories, result,
                                  initial, scalars, strict)
            return
        geo = prog["geo"]
        if not checks and not _certified(plan, geo):
            # actual cross-block accesses: never run unchecked -- the
            # compiled tier reproduces the interpreter's bookkeeping
            # and its first RemoteAccessError exactly
            self._delegate_blocks("certificate-failed", plan, memories,
                                  result, initial, scalars, strict)
            return

        tracer = current_tracer()
        reg = current_registry()
        specs = geo["specs"]
        grids = {n: [0.0] * s.size for n, s in specs.items()}
        stamps = {n: [-1] * specs[n].size for n in geo["written"]}
        for name, bindex, pairs in geo["seed"]:
            vals = memories[bindex].values[name]
            g = grids[name]
            for c, f in pairs:
                g[f] = vals[c]

        live = plan.live
        space = plan.model.space
        nreads = geo["nreads"]
        nstmts = geo["nstmts"]
        total_iters = sum(len(b.iterations) for b in plan.blocks)
        with tracer.span("engine.codegen.exec", category="engine",
                         backend=self.name, mode=prog["mode"],
                         blocks=len(plan.blocks),
                         iterations=total_iters) as sp:
            if prog["mode"] == "rect":
                prog["fn"](geo["args"], grids, stamps)
                result.executed_iterations += total_iters
                for b in plan.blocks:
                    mem = memories[b.index]
                    n = len(b.iterations)
                    mem.writes += n * nstmts
                    mem.reads += n * sum(nreads)
                stmts = total_iters * nstmts
            elif prog["mode"] == "checked":
                def viol(bindex, array, coords, is_write):
                    mem = memories[bindex]
                    mem.note_remote(is_write=is_write)
                    from repro.machine.memory import RemoteAccessError

                    raise RemoteAccessError(mem.pid, array, coords,
                                            is_write)

                out = prog["fn"](_own_tables(plan, geo), grids, stamps,
                                 live, space.rank_of, viol)
                stmts = self._apply_counts(out, plan, memories, result,
                                           live, nreads)
            else:
                out = prog["fn"](geo["args"], grids, stamps, live,
                                 space.rank_of)
                stmts = self._apply_counts(out, plan, memories, result,
                                           live, nreads)
            sp.set(statements=stmts)

        write_stamps = result.write_stamps
        for bindex, name, pairs in geo["scatter"]:
            st = stamps[name]
            g = grids[name]
            vals = memories[bindex].values[name]
            for c, f in pairs:
                s = st[f]
                if s >= 0:
                    vals[c] = g[f]
                    write_stamps[(bindex, name, c)] = s
        reg.inc("engine.codegen.runs")
        reg.inc("engine.codegen.blocks", len(plan.blocks))
        reg.inc("engine.codegen.iterations", total_iters)

    @staticmethod
    def _apply_counts(out, plan, memories, result, live, nreads) -> int:
        blocks = {b.index: b for b in plan.blocks}
        stmts = 0
        for bindex, executed, counts in out:
            mem = memories[bindex]
            result.executed_iterations += executed
            for k, n in enumerate(counts):
                mem.writes += n
                mem.reads += n * nreads[k]
                stmts += n
                if live is not None:
                    result.skipped_computations += \
                        len(blocks[bindex].iterations) - n
        return stmts


register_backend(CodegenEngine, aliases=("cg", "specialized"))
