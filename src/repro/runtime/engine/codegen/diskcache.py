"""The persistent on-disk kernel cache (clcache-shaped).

One directory holds, per kernel key (the rename-invariant fingerprint
+ geometry digest computed by :mod:`repro.runtime.engine.codegen.emit`):

- ``<key>.py``  -- the generated source, for debuggability and for
  interpreters whose marshal format differs from the writer's;
- ``<key>.bin`` -- the ``marshal``-serialized code object, valid only
  for the recorded ``sys.implementation.cache_tag`` (a warm process on
  the same interpreter unmarshals it and skips *both* the emit and the
  compile step -- zero ``engine.codegen.emit``/``compile`` spans);
- ``manifest.json`` -- entry sizes, interpreter tags and a logical
  access clock for LRU eviction under the byte cap.

Every operation takes an exclusive ``flock`` on a sidecar lock file,
so concurrent processes (blockstore workers racing their parent, two
test processes hammering one directory) serialize on the manifest and
never observe torn files; payload files are written to a temp name and
``os.replace``d into place.  A corrupt manifest or payload is treated
as a miss (``cache.disk.miss.corrupt``) and rewritten, never an error
-- the cache is an optimization, so every failure path degrades to
re-emitting.

Stats surface through the ambient metrics registry:

- ``cache.disk.hit`` / ``cache.disk.miss.<reason>`` (reasons:
  ``new-key``, ``corrupt``) plus ``cache.disk.stale-tag`` when the
  source hits but the code object was written by another interpreter
- ``cache.disk.store``, ``cache.disk.evict``
- ``cache.disk.bytes`` (gauge, post-op total)

Knobs: ``REPRO_CODEGEN_CACHE_DIR`` (directory; default
``<cache-root>/codegen`` under :func:`repro.pipeline.cache.cache_root`),
``REPRO_CODEGEN_CACHE_MB`` (byte cap, default 32),
``REPRO_CODEGEN_DISK=0`` (disable persistence entirely).
"""

from __future__ import annotations

import json
import marshal
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

DIR_ENV_VAR = "REPRO_CODEGEN_CACHE_DIR"
MB_ENV_VAR = "REPRO_CODEGEN_CACHE_MB"
DISABLE_ENV_VAR = "REPRO_CODEGEN_DISK"

DEFAULT_CAP_MB = 32

_MANIFEST = "manifest.json"
_LOCK = "lock"


def _registry():
    from repro.obs.metrics import current_registry

    return current_registry()


def cache_tag() -> str:
    """The interpreter tag gating marshal reuse (e.g. ``cpython-311``)."""
    return sys.implementation.cache_tag or sys.version[:7]


class DiskKernelCache:
    """A lock-safe, size-capped source + code-object store."""

    def __init__(self, root: Path, cap_bytes: int) -> None:
        self.root = Path(root)
        self.cap_bytes = cap_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / _LOCK

    # -- locking ----------------------------------------------------------
    @contextmanager
    def _locked(self):
        fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            try:
                import fcntl

                fcntl.flock(fd, fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-POSIX fallback
                pass
            yield
        finally:
            os.close(fd)  # closing drops the flock

    # -- manifest ---------------------------------------------------------
    def _read_manifest(self) -> dict:
        try:
            m = json.loads((self.root / _MANIFEST).read_text())
            if m.get("version") == 1 and isinstance(m.get("entries"), dict):
                return m
        except (OSError, ValueError):
            pass
        return {"version": 1, "clock": 0, "entries": {}}

    def _write_manifest(self, m: dict) -> None:
        tmp = self.root / f"{_MANIFEST}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(m, sort_keys=True))
        os.replace(tmp, self.root / _MANIFEST)

    def _write_file(self, name: str, data: bytes) -> None:
        tmp = self.root / f"{name}.tmp.{os.getpid()}"
        tmp.write_bytes(data)
        os.replace(tmp, self.root / name)

    def _drop(self, key: str, entry: dict) -> None:
        for suffix in (".py", ".bin"):
            try:
                (self.root / f"{key}{suffix}").unlink()
            except FileNotFoundError:
                pass

    @staticmethod
    def _total(m: dict) -> int:
        return sum(e.get("bytes", 0) for e in m["entries"].values())

    # -- operations -------------------------------------------------------
    def load(self, key: str):
        """-> (code object or None, source or None).

        A hit returns at least the source; the code object comes along
        only when the stored marshal matches this interpreter's tag.
        """
        reg = _registry()
        with self._locked():
            m = self._read_manifest()
            entry = m["entries"].get(key)
            if entry is None:
                reg.inc("cache.disk.miss.new-key")
                return None, None
            try:
                src = (self.root / f"{key}.py").read_text()
            except OSError:
                del m["entries"][key]
                self._drop(key, entry)
                self._write_manifest(m)
                reg.inc("cache.disk.miss.corrupt")
                return None, None
            code = None
            if entry.get("tag") == cache_tag():
                try:
                    code = marshal.loads(
                        (self.root / f"{key}.bin").read_bytes())
                except (OSError, ValueError, EOFError, TypeError):
                    code = None
            m["clock"] += 1
            entry["used"] = m["clock"]
            self._write_manifest(m)
        if code is None and entry.get("tag") != cache_tag():
            # the source still hits; only the code object is re-derived
            reg.inc("cache.disk.stale-tag")
        reg.inc("cache.disk.hit")
        return code, src

    def store(self, key: str, src: str, code_bytes: bytes) -> None:
        """Persist one kernel and evict LRU entries past the byte cap."""
        reg = _registry()
        with self._locked():
            m = self._read_manifest()
            self._write_file(f"{key}.py", src.encode())
            self._write_file(f"{key}.bin", code_bytes)
            m["clock"] += 1
            m["entries"][key] = {
                "bytes": len(src.encode()) + len(code_bytes),
                "tag": cache_tag(),
                "used": m["clock"],
            }
            while self._total(m) > self.cap_bytes and len(m["entries"]) > 1:
                victim = min(
                    (k for k in m["entries"] if k != key),
                    key=lambda k: m["entries"][k].get("used", 0))
                self._drop(victim, m["entries"].pop(victim))
                reg.inc("cache.disk.evict")
            self._write_manifest(m)
            reg.inc("cache.disk.store")
            reg.set("cache.disk.bytes", self._total(m))


def default_cache_dir() -> Path:
    env = os.environ.get(DIR_ENV_VAR)
    if env:
        return Path(env)
    from repro.pipeline.cache import cache_root

    return cache_root() / "codegen"


def get_disk_cache() -> Optional[DiskKernelCache]:
    """The configured cache, or None when persistence is off.

    Construction failures (read-only filesystem, permission walls)
    disable the cache for the call rather than failing the run.
    """
    if os.environ.get(DISABLE_ENV_VAR, "").strip() == "0":
        return None
    try:
        cap = int(float(os.environ.get(MB_ENV_VAR, DEFAULT_CAP_MB))
                  * 1024 * 1024)
        return DiskKernelCache(default_cache_dir(), cap)
    except (OSError, ValueError):  # pragma: no cover - hostile filesystems
        return None
