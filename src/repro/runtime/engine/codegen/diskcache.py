"""The persistent on-disk kernel cache (clcache-shaped).

One directory holds, per kernel key (the rename-invariant fingerprint
+ geometry digest computed by :mod:`repro.runtime.engine.codegen.emit`):

- ``<key>.py``  -- the generated source, for debuggability and for
  interpreters whose marshal format differs from the writer's;
- ``<key>.bin`` -- the ``marshal``-serialized code object, valid only
  for the recorded ``sys.implementation.cache_tag`` (a warm process on
  the same interpreter unmarshals it and skips *both* the emit and the
  compile step -- zero ``engine.codegen.emit``/``compile`` spans);
- ``manifest.json`` -- entry sizes, interpreter tags and a logical
  access clock for LRU eviction under the byte cap.

The lock/manifest/evict skeleton lives in the shared
:class:`repro.pipeline.diskstore.DiskStore` (also used by the plan
cache's disk tier): every operation takes an exclusive ``flock`` on a
sidecar lock file, payload files are written to a temp name and
``os.replace``d into place, and a corrupt manifest or payload is
treated as a miss (``cache.disk.miss.corrupt``) and rewritten, never
an error -- the cache is an optimization, so every failure path
degrades to re-emitting.

Stats surface through the ambient metrics registry:

- ``cache.disk.hit`` / ``cache.disk.miss.<reason>`` (reasons:
  ``new-key``, ``corrupt``) plus ``cache.disk.stale-tag`` when the
  source hits but the code object was written by another interpreter
- ``cache.disk.store``, ``cache.disk.evict``
- ``cache.disk.bytes`` (gauge, post-op total)

Knobs: ``REPRO_CODEGEN_CACHE_DIR`` (directory; default
``<cache-root>/codegen`` under :func:`repro.pipeline.cache.cache_root`),
``REPRO_CODEGEN_CACHE_MB`` (byte cap, default 32),
``REPRO_CODEGEN_DISK=0`` (disable persistence entirely).
"""

from __future__ import annotations

import marshal
import os
import sys
from pathlib import Path
from typing import Optional

from repro.pipeline.diskstore import DiskStore

DIR_ENV_VAR = "REPRO_CODEGEN_CACHE_DIR"
MB_ENV_VAR = "REPRO_CODEGEN_CACHE_MB"
DISABLE_ENV_VAR = "REPRO_CODEGEN_DISK"

DEFAULT_CAP_MB = 32

_SUFFIXES = (".py", ".bin")


def _registry():
    from repro.obs.metrics import current_registry

    return current_registry()


def cache_tag() -> str:
    """The interpreter tag gating marshal reuse (e.g. ``cpython-311``)."""
    return sys.implementation.cache_tag or sys.version[:7]


class DiskKernelCache:
    """A lock-safe, size-capped source + code-object store."""

    def __init__(self, root: Path, cap_bytes: int) -> None:
        self._store = DiskStore(root, cap_bytes=cap_bytes)
        self.root = self._store.root
        self.cap_bytes = cap_bytes

    # -- operations -------------------------------------------------------
    def load(self, key: str):
        """-> (code object or None, source or None).

        A hit returns at least the source; the code object comes along
        only when the stored marshal matches this interpreter's tag.
        """
        reg = _registry()
        st = self._store
        with st.locked():
            m = st.read_manifest()
            entry = m["entries"].get(key)
            if entry is None:
                reg.inc("cache.disk.miss.new-key")
                return None, None
            try:
                src = st.read_file(f"{key}.py").decode()
            except OSError:
                del m["entries"][key]
                st.remove(key, _SUFFIXES)
                st.write_manifest(m)
                reg.inc("cache.disk.miss.corrupt")
                return None, None
            code = None
            if entry.get("tag") == cache_tag():
                try:
                    code = marshal.loads(st.read_file(f"{key}.bin"))
                except (OSError, ValueError, EOFError, TypeError):
                    code = None
            st.touch(m, key)
            st.write_manifest(m)
        if code is None and entry.get("tag") != cache_tag():
            # the source still hits; only the code object is re-derived
            reg.inc("cache.disk.stale-tag")
        reg.inc("cache.disk.hit")
        return code, src

    def store(self, key: str, src: str, code_bytes: bytes) -> None:
        """Persist one kernel and evict LRU entries past the byte cap."""
        reg = _registry()
        st = self._store
        with st.locked():
            m = st.read_manifest()
            src_bytes = src.encode()
            st.write_file(f"{key}.py", src_bytes)
            st.write_file(f"{key}.bin", code_bytes)
            st.record(m, key, len(src_bytes) + len(code_bytes),
                      tag=cache_tag())
            for _ in st.evict_lru(m, _SUFFIXES, protect=(key,)):
                reg.inc("cache.disk.evict")
            st.write_manifest(m)
            reg.inc("cache.disk.store")
            reg.set("cache.disk.bytes", st.total_bytes(m))


def default_cache_dir() -> Path:
    env = os.environ.get(DIR_ENV_VAR)
    if env:
        return Path(env)
    from repro.pipeline.cache import cache_root

    return cache_root() / "codegen"


def get_disk_cache() -> Optional[DiskKernelCache]:
    """The configured cache, or None when persistence is off.

    Construction failures (read-only filesystem, permission walls)
    disable the cache for the call rather than failing the run.
    """
    if os.environ.get(DISABLE_ENV_VAR, "").strip() == "0":
        return None
    try:
        cap = int(float(os.environ.get(MB_ENV_VAR, DEFAULT_CAP_MB))
                  * 1024 * 1024)
        return DiskKernelCache(default_cache_dir(), cap)
    except (OSError, ValueError):  # pragma: no cover - hostile filesystems
        return None
