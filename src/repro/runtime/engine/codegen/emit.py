"""Source emission for per-(plan, geometry) specialized kernels.

Reuses the compiled tier's expression lowering (exact-interpreter
constant folding, float-leaf index values) but retargets every array
access at *flat* Python-list grids whose slot arithmetic was folded at
emit time by :func:`repro.runtime.engine.codegen.geometry.flat_affine`.
Adjacent statements of a nest share one fused loop body, and -- the
codegen tier's defining move -- the interpreter's per-access ownership
checks are gone: the engine only runs an unchecked kernel under the
communication audit's zero-cross-access certificate.

Two kernel shapes:

- **rect**: every block is the same dense lexicographic rectangle, so
  blocks arrive as ``(base..., rank_base)`` tuples and the kernel runs
  literal ``for _oK in range(extent)`` loops with block-invariant slot
  bases hoisted out (``_cJ = 40*_b0 + _b1``) and the write-stamp rank
  folded to ``rank_base + stride*_oK`` literal arithmetic;
- **list**: blocks arrive as ``(index, iterations)`` and the kernel
  streams the recorded tuples -- the shape that also carries ``live``
  filtering (redundancy elimination) and per-block execution counts.

``REPRO_CODEGEN_CHECKS=1`` selects a guarded **checked** variant (list
shape) that verifies every access against the block's owned-slot sets
before touching a grid, for debugging plans whose certificate you do
not trust; a violation raises the interpreter's
:class:`~repro.machine.memory.RemoteAccessError` through the engine's
``_viol`` callback.  Checked kernels verify reads before evaluating
the statement's value, so a statement that both divides by zero and
reads remotely reports the remote access first (the interpreter, which
interleaves reads with arithmetic, can surface the division first).

Kernel keys are content hashes over the *inputs* of emission -- the
rename-invariant canonical nest form, scalar bindings, grid specs,
rect shape and rank strides -- never over the emitted text, so a warm
process can address the on-disk cache without emitting anything.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional

from repro.lang.ast import ArrayRef, LoopNest
from repro.lang.fingerprint import nest_canonical_form
from repro.runtime.engine.codegen.geometry import GridSpec, flat_affine
from repro.runtime.engine.compiled import (
    _coord_srcs,
    _iteration_prelude,
    _tuple_src,
    _value_indices,
    _value_src,
)

KERNEL_NAME = "_cg_kernel"

#: Bump when the emitted source's shape or argument protocol changes;
#: part of every key so stale disk entries can never be attached.
_VERSION = "cg1"


def _term(coeff: int, var: str) -> str:
    return var if coeff == 1 else f"{coeff}*{var}"


def _sum_src(terms: list[str], const: int = 0) -> str:
    parts = list(terms)
    if const or not parts:
        parts.append(str(const))
    return " + ".join(parts)


def kernel_key(mode: str, nest: LoopNest, scalars: Mapping[str, float],
               specs: Mapping[str, GridSpec],
               rect_shape: Optional[tuple[int, ...]],
               rank_rect, has_live: bool) -> str:
    """Rename-invariant fingerprint + geometry digest of one kernel."""
    h = hashlib.sha256()
    for part in (
        _VERSION,
        mode,
        nest_canonical_form(nest),
        repr(tuple(sorted(scalars.items()))),
        repr(tuple((n, s.lo, s.shape, s.strides)
                   for n, s in sorted(specs.items()))),
        repr(rect_shape),
        repr(rank_rect),
        repr(bool(has_live)),
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class _SlotNamer:
    """Dedupes block-invariant slot bases into ``_cJ`` preamble lines."""

    def __init__(self) -> None:
        self.names: dict[tuple, str] = {}
        self.lines: list[str] = []

    def base(self, key: tuple, src: str) -> str:
        name = self.names.get(key)
        if name is None:
            name = f"_c{len(self.names)}"
            self.names[key] = name
            self.lines.append(f"{name} = {src}")
        return name


# ---------------------------------------------------------------------------
# rect kernel: uniform dense lexicographic blocks
# ---------------------------------------------------------------------------

def emit_rect_kernel(nest: LoopNest, scalars: Mapping[str, float],
                     specs: Mapping[str, GridSpec],
                     shape: tuple[int, ...], rank_rect) -> str:
    """``fn(_blocks, _g, _s)`` with literal loop extents.

    ``_blocks`` is a list of ``(base_0..base_{d-1}, rank_base)`` where
    ``rank_base`` is the block base point's sequential rank already
    scaled by the statement count; ``_g``/``_s`` map array name to the
    flat value / write-stamp lists.
    """
    indices = nest.indices
    depth = nest.depth
    nstmts = len(nest.statements)
    names = nest.array_names()
    written: list[str] = []
    for stmt in nest.statements:
        if stmt.lhs.array not in written:
            written.append(stmt.lhs.array)
    gvar = {n: f"_g_{n}" for n in names}
    svar = {n: f"_s_{n}" for n in written}
    loop_dims = [k for k in range(depth) if shape[k] > 1]
    used_vals = _value_indices(nest)
    namer = _SlotNamer()
    rank_los, rank_strides = rank_rect

    def slot_parts(ref: ArrayRef) -> tuple[str, list[str]]:
        coeffs, const = flat_affine(ref, indices, specs[ref.array])
        base = namer.base(
            (ref.array, coeffs, const),
            _sum_src([_term(coeffs[k], f"_b{k}")
                      for k in range(depth) if coeffs[k]], const))
        return base, [_term(coeffs[k], f"_o{k}")
                      for k in loop_dims if coeffs[k]]

    def stamp_src(k: int) -> str:
        terms = [_term(rank_strides[d] * nstmts, f"_o{d}")
                 for d in loop_dims if rank_strides[d]]
        return _sum_src(["_rb"] + terms, k)

    body: list[str] = []
    for k, stmt in enumerate(nest.statements):
        base, o_terms = slot_parts(stmt.lhs)
        lhs_src = _sum_src([base] + o_terms)
        if o_terms:
            body.append(f"_w{k} = {lhs_src}")
            lhs_local = f"_w{k}"
        else:
            lhs_local = base

        def read_src(ref: ArrayRef, _arr=stmt.lhs.array, _src=lhs_src,
                     _local=lhs_local) -> str:
            rbase, ro = slot_parts(ref)
            src = _sum_src([rbase] + ro)
            if ref.array == _arr and src == _src:
                src = _local  # the accumulation read reuses the lhs slot
            return f"{gvar[ref.array]}[{src}]"

        val = _value_src(stmt.rhs, indices, scalars, read_src)
        body.append(f"{gvar[stmt.lhs.array]}[{lhs_local}] = {val}")
        body.append(f"{svar[stmt.lhs.array]}[{lhs_local}] = {stamp_src(k)}")

    lines = [f"def {KERNEL_NAME}(_blocks, _g, _s):"]
    for n in names:
        lines.append(f"    {gvar[n]} = _g[{n!r}]")
    for n in written:
        lines.append(f"    {svar[n]} = _s[{n!r}]")
    lines.append("    for _b in _blocks:")
    unpack = ", ".join([f"_b{k}" for k in range(depth)] + ["_rb"])
    lines.append(f"        {unpack} = _b")
    for k in sorted(used_vals):
        if k not in loop_dims:
            lines.append(f"        _f{k} = float(_b{k})")
    for pre in namer.lines:
        lines.append(f"        {pre}")
    ind = "        "
    for k in loop_dims:
        lines.append(f"{ind}for _o{k} in range({shape[k]}):")
        ind += "    "
        if k in used_vals:
            lines.append(f"{ind}_f{k} = float(_b{k} + _o{k})")
    for b in body:
        lines.append(ind + b)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# list kernel: recorded iteration tuples (live filtering, ragged blocks)
# ---------------------------------------------------------------------------

def _rank_src(rank_rect, nstmts: int) -> str:
    if rank_rect is None:
        return f"_rank_of(_it) * {nstmts}"
    los, strides = rank_rect
    terms = [f"(i{k} - {lo}) * {s}" if s != 1 else f"(i{k} - {lo})"
             for k, (lo, s) in enumerate(zip(los, strides)) if s != 0]
    inner = " + ".join(terms) or "0"
    return f"({inner}) * {nstmts}"


def emit_list_kernel(nest: LoopNest, scalars: Mapping[str, float],
                     specs: Mapping[str, GridSpec], rank_rect,
                     has_live: bool, checks: bool = False) -> str:
    """``fn(_blocks, _g, _s, _live, _rank_of[, _viol])`` -> per-block stats.

    ``_blocks`` is ``[(index, iterations), ...]`` (checked kernels get a
    third ``{array: owned-slot frozenset}`` element); the return value
    is ``[(index, executed_iterations, per-statement counts), ...]``.
    """
    indices = nest.indices
    nstmts = len(nest.statements)
    names = nest.array_names()
    written: list[str] = []
    for stmt in nest.statements:
        if stmt.lhs.array not in written:
            written.append(stmt.lhs.array)
    gvar = {n: f"_g_{n}" for n in names}
    svar = {n: f"_s_{n}" for n in written}
    ovar = {n: f"_own_{n}" for n in names}

    def slot_src(ref: ArrayRef) -> str:
        coeffs, const = flat_affine(ref, indices, specs[ref.array])
        return _sum_src([_term(coeffs[k], f"i{k}")
                         for k in range(len(indices)) if coeffs[k]], const)

    sig = "_blocks, _g, _s, _live, _rank_of"
    if checks:
        sig += ", _viol"
    lines = [f"def {KERNEL_NAME}({sig}):"]
    for n in names:
        lines.append(f"    {gvar[n]} = _g[{n!r}]")
    for n in written:
        lines.append(f"    {svar[n]} = _s[{n!r}]")
    lines.append("    _out = []")
    lines.append("    for _blk in _blocks:")
    if checks:
        lines.append("        _bindex, _iters, _own = _blk")
        for n in names:
            lines.append(f"        {ovar[n]} = _own[{n!r}]")
    else:
        lines.append("        _bindex, _iters = _blk")
    for k in range(nstmts):
        lines.append(f"        _n{k} = 0")
    lines.append("        _ex = 0")
    lines.append("        for _it in _iters:")
    ind = "            "
    for pre in _iteration_prelude(nest.depth, _value_indices(nest)):
        lines.append(ind + pre)
    lines.append(ind + f"_r = {_rank_src(rank_rect, nstmts)}")
    if has_live:
        lines.append(ind + "_any = False")
    for k, stmt in enumerate(nest.statements):
        sind = ind
        if has_live:
            lines.append(ind + f"if ({k}, _it) in _live:")
            sind = ind + "    "
        reads: list[tuple[str, str, str, str]] = []

        def read_src(ref: ArrayRef) -> str:
            src = slot_src(ref)
            if not checks:
                return f"{gvar[ref.array]}[{src}]"
            var = f"_x{len(reads)}"
            reads.append((var, ref.array,
                          _tuple_src(_coord_srcs(ref, indices)), src))
            return f"{gvar[ref.array]}[{var}]"

        val = _value_src(stmt.rhs, indices, scalars, read_src)
        lhs_src = slot_src(stmt.lhs)
        arr = stmt.lhs.array
        if checks:
            # reads registered in evaluation (leaf) order; verify them
            # all before the statement's arithmetic runs
            for var, _, _, src in reads:
                lines.append(sind + f"{var} = {src}")
            for var, rarr, coords, _ in reads:
                lines.append(sind + f"if {var} not in {ovar[rarr]}:")
                lines.append(sind + f"    _viol(_bindex, {rarr!r}, "
                                    f"{coords}, False)")
            lines.append(sind + f"_v{k} = {val}")
            lines.append(sind + f"_w{k} = {lhs_src}")
            lines.append(sind + f"if _w{k} not in {ovar[arr]}:")
            lines.append(sind + f"    _viol(_bindex, {arr!r}, "
                                f"{_tuple_src(_coord_srcs(stmt.lhs, indices))}"
                                f", True)")
            lines.append(sind + f"{gvar[arr]}[_w{k}] = _v{k}")
            lines.append(sind + f"{svar[arr]}[_w{k}] = _r + {k}")
        else:
            lines.append(sind + f"_w{k} = {lhs_src}")
            lines.append(sind + f"{gvar[arr]}[_w{k}] = {val}")
            lines.append(sind + f"{svar[arr]}[_w{k}] = _r + {k}")
        lines.append(sind + f"_n{k} += 1")
        if has_live:
            lines.append(sind + "_any = True")
    if has_live:
        lines += [ind + "if _any:", ind + "    _ex += 1"]
    else:
        lines.append(ind + "_ex += 1")
    counts = ", ".join(f"_n{k}" for k in range(nstmts))
    lines.append(f"        _out.append((_bindex, _ex, ({counts},)))")
    lines.append("    return _out")
    return "\n".join(lines) + "\n"
