"""Per-plan codegen engine tier with a persistent on-disk kernel cache.

Importing this package registers the ``codegen`` backend (aliases
``cg``, ``specialized``).  Submodules:

- :mod:`.geometry` -- what can be specialized (flat grids, rect
  blocks, the communication-audit certificate);
- :mod:`.emit` -- the source emitters and rename-invariant kernel keys;
- :mod:`.diskcache` -- the lock-safe, size-capped on-disk cache;
- :mod:`.engine` -- the engine itself and the memory->disk->emit
  kernel-loading chain;
- :mod:`.storegen` -- specialized store kernels for blockstore
  workers, attached by cache key through descriptor leases.
"""

from repro.runtime.engine.codegen.diskcache import (  # noqa: F401
    DiskKernelCache,
    get_disk_cache,
)
from repro.runtime.engine.codegen.engine import (  # noqa: F401
    CodegenEngine,
    load_kernel,
    program_for,
)
from repro.runtime.engine.codegen.geometry import (  # noqa: F401
    CodegenUnsupported,
)
