"""Plan geometry for the codegen tier: what can be specialized, and how.

The codegen engine only accepts plans whose execution is *statically
enumerable*: affine integral subscripts, written arrays partitioned
across blocks (no written replicas -- the same restriction the
vectorized tier imposes), and grids small enough to materialize as
flat dense buffers.  Everything here is derived once per plan and
cached; the expensive parts (bounding boxes, the lexicographic-order
check, the communication-audit certificate) are one-time setup costs
that ``repro perf`` reports separately from steady-state runs.

Three geometric facts drive the emitted source:

- **grid specs**: each array's allocated elements are embedded in the
  dense row-major bounding box of their union, so a reference's
  per-dimension affine subscripts fold into *one* flat-slot affine
  (``base + sum(coeff_k * i_k)``) with compile-time integer
  coefficients;
- **rect blocks**: when every iteration block is the same dense
  lexicographic rectangle (the common output of the paper's
  hyperplane partitioner), loops over literal ``range(extent)`` bounds
  replace the per-iteration tuple stream, and the rank-of stamp
  formula folds to a per-block base plus literal stride increments;
- **the certificate**: the communication audit's static replay proves
  zero cross-block accesses, which is the license to elide the
  interpreter's per-access ownership checks entirely (Theorems 1-4
  say each block touches only its own data blocks; the audit verifies
  that claim for *this* plan before any check is dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, LoopNest

#: Hard cap on the summed flat-grid words; beyond it the dense
#: bounding-box embedding may dwarf the actual allocation.
MAX_WORDS = 1 << 22


class CodegenUnsupported(ValueError):
    """The plan cannot be specialized; the engine delegates down-tier."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class GridSpec:
    """Dense row-major bounding box of one array's allocated elements."""

    lo: tuple[int, ...]
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    size: int


def _c_strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return tuple(strides)


def grid_specs(plan) -> dict[str, GridSpec]:
    """Per-array flat-grid specs over the union of allocated elements."""
    specs: dict[str, GridSpec] = {}
    total = 0
    for name, dblocks in plan.data_blocks.items():
        lo: Optional[list[int]] = None
        hi: Optional[list[int]] = None
        for db in dblocks:
            for c in db.elements:
                if lo is None:
                    lo = list(c)
                    hi = list(c)
                    continue
                for d, v in enumerate(c):
                    if v < lo[d]:
                        lo[d] = v
                    elif v > hi[d]:
                        hi[d] = v
        if lo is None:
            specs[name] = GridSpec(lo=(), shape=(), strides=(), size=0)
            continue
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        size = 1
        for d in shape:
            size *= d
        total += size
        if total > MAX_WORDS:
            raise CodegenUnsupported(
                f"flat grids need {total} words (cap {MAX_WORDS})")
        specs[name] = GridSpec(lo=tuple(lo), shape=shape,
                               strides=_c_strides(shape), size=size)
    return specs


def check_written_partitioned(plan) -> frozenset:
    """Written arrays must be partitioned (no replicated written data).

    A replicated written element would share one slot in the global
    flat grid between two blocks, losing the per-block copy semantics
    of ``LocalMemory``; the same restriction gates the vectorized tier.
    """
    written = frozenset(s.lhs.array for s in plan.nest.statements)
    for name in written:
        dblocks = plan.data_blocks.get(name, [])
        count = sum(len(db.elements) for db in dblocks)
        distinct = len(frozenset().union(*(db.elements for db in dblocks))) \
            if dblocks else 0
        if count != distinct:
            raise CodegenUnsupported(
                f"written array {name!r} has replicated elements")
    return written


def rect_block_shape(plan) -> Optional[tuple[int, ...]]:
    """The uniform dense lexicographic shape of every block, or None.

    The shape licenses literal ``range(extent)`` loops *only* if each
    block's iteration list is exactly the lexicographic enumeration of
    its rectangle -- accumulation statements make execution order
    observable in float bits, so the order is verified, not assumed.
    """
    shape: Optional[tuple[int, ...]] = None
    for b in plan.blocks:
        iters = b.iterations
        if not iters:
            return None
        lo, hi = iters[0], iters[-1]
        s = tuple(h - l + 1 for l, h in zip(lo, hi))
        if any(d <= 0 for d in s):
            return None
        if shape is None:
            shape = s
        elif s != shape:
            return None
        n = 1
        for d in s:
            n *= d
        if n != len(iters):
            return None
    if shape is None:
        return None
    for b in plan.blocks:
        lo = b.iterations[0]
        expect = product(*(range(l, l + d) for l, d in zip(lo, shape)))
        if any(a != e for a, e in zip(b.iterations, expect)):
            return None
    return shape


def ref_affine(ref: ArrayRef, indices: tuple[str, ...]):
    """Per-dimension integral affine of one reference: (matrix, consts).

    ``matrix[d][k]`` is the coefficient of loop index ``k`` in
    subscript ``d``; anything non-affine or non-integral (rational
    coefficients need the interpreter's ``int(float)`` truncation) is
    unsupported here and falls down-tier.
    """
    matrix: list[tuple[int, ...]] = []
    consts: list[int] = []
    for sub in ref.subscripts:
        try:
            ae = affine_of(sub, indices)
        except NotAffineError as exc:
            raise CodegenUnsupported(
                f"subscript of {ref.array} is not affine: {exc}") from exc
        if not ae.is_integral():
            raise CodegenUnsupported(
                f"subscript of {ref.array} has non-integral coefficients")
        matrix.append(tuple(int(a) for a in ae.coeffs))
        consts.append(int(ae.const))
    return tuple(matrix), tuple(consts)


def flat_affine(ref: ArrayRef, indices: tuple[str, ...],
                spec: GridSpec) -> tuple[tuple[int, ...], int]:
    """The reference's flat-slot affine: (per-index coeffs, constant)."""
    matrix, consts = ref_affine(ref, indices)
    if len(matrix) != len(spec.lo):
        raise CodegenUnsupported(
            f"{ref.array} referenced with {len(matrix)} subscripts but "
            f"allocated with {len(spec.lo)} dimensions")
    coeffs = [0] * len(indices)
    const = 0
    for d, (row, c) in enumerate(zip(matrix, consts)):
        stride = spec.strides[d]
        for k, a in enumerate(row):
            coeffs[k] += a * stride
        const += (c - spec.lo[d]) * stride
    return tuple(coeffs), const


def check_nest(nest: LoopNest, specs: dict[str, GridSpec]) -> None:
    """Every reference must lower to a flat affine, or the plan is out."""
    indices = nest.indices
    for stmt in nest.statements:
        for ref in [stmt.lhs] + list(stmt.rhs.array_refs()):
            flat_affine(ref, indices, specs[ref.array])


def _interval_certify(plan) -> Optional[bool]:
    """Prove zero cross-block access by interval arithmetic, or None.

    For affine references and dense-rectangular data blocks, the
    per-dimension min/max of each subscript over a block's iteration
    bounding box bounds every coordinate that block can touch; if the
    bounds sit inside the block's own rectangle for every reference,
    no access can leave the block.  The check is O(blocks x refs) --
    microseconds where the audit replay is seconds -- but it is only a
    *sufficient* proof: anything it cannot decide (non-affine
    subscripts, ragged data blocks, correlated subscripts that exceed
    their per-dim bounds without actually escaping) returns None and
    falls back to the audit's exact replay.
    """
    nest = plan.nest
    indices = nest.indices
    refs = []
    seen: set = set()
    try:
        for stmt in nest.statements:
            for ref in [stmt.lhs] + list(stmt.rhs.array_refs()):
                matrix, consts = ref_affine(ref, indices)
                key = (ref.array, matrix, consts)
                if key not in seen:
                    seen.add(key)
                    refs.append(key)
    except CodegenUnsupported:
        return None

    rects: dict[tuple, Optional[tuple]] = {}

    def db_rect(name: str, bindex: int):
        """(lo, hi) of a dense-rect data block, () if empty, None if
        ragged (= inconclusive)."""
        key = (name, bindex)
        if key in rects:
            return rects[key]
        elems = plan.data_blocks[name][bindex].elements
        if not elems:
            rects[key] = ()
            return ()
        lo = tuple(map(min, zip(*elems)))
        hi = tuple(map(max, zip(*elems)))
        size = 1
        for l, h in zip(lo, hi):
            size *= h - l + 1
        r = (lo, hi) if size == len(elems) else None
        rects[key] = r
        return r

    for b in plan.blocks:
        iters = b.iterations
        if not iters:
            continue
        ilo = tuple(map(min, zip(*iters)))
        ihi = tuple(map(max, zip(*iters)))
        for name, matrix, consts in refs:
            rect = db_rect(name, b.index)
            if rect is None or rect == ():
                return None
            lo, hi = rect
            for d, (row, c) in enumerate(zip(matrix, consts)):
                alo = ahi = c
                for k, a in enumerate(row):
                    if a > 0:
                        alo += a * ilo[k]
                        ahi += a * ihi[k]
                    elif a < 0:
                        alo += a * ihi[k]
                        ahi += a * ilo[k]
                if alo < lo[d] or ahi > hi[d]:
                    return None
    return True


def certify_zero_cross(plan) -> bool:
    """The communication audit's static certificate for check elision.

    True iff zero cross-block accesses can happen -- exactly the
    communication-freedom Theorems 1-4 promise for a correct partition,
    verified rather than trusted.  The interval fast path proves the
    common all-affine dense-rect case analytically; anything it cannot
    decide falls back to the audit's exact per-block replay.  Only a
    certified plan may run with ownership checks elided; anything else
    delegates to the compiled tier, whose per-access slow path
    reproduces the interpreter's bookkeeping and error bit-for-bit.
    """
    from repro.obs.audit import block_cross_accesses

    if _interval_certify(plan):
        return True
    for b in plan.blocks:
        cross, _ = block_cross_accesses(plan, b.index, max_detail=1)
        if cross:
            return False
    return True
