"""The interpreter backend: the golden model, behind the Engine interface.

This is the original tree-walking executor -- :func:`repro.runtime.seq.eval_expr`
re-traversing the expression AST for every statement of every iteration.
It is the slowest tier and the semantic reference: every other backend
is cross-checked against it bit for bit.  It is also the only tier that
supports ``strict=False`` (count-but-tolerate remote accesses), because
its reads and writes go through :class:`~repro.machine.memory.LocalMemory`
one element at a time.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.engine.base import Engine, register_backend


class InterpreterEngine(Engine):
    """Tree-walking evaluation of one statement at a time."""

    name = "interp"
    fallback = None

    def run_nest(self, nest, arrays, scalars, space) -> None:
        from repro.runtime.seq import execute_statement

        def read(a, c):
            return arrays[a][c]

        def write(a, c, v):
            arrays[a][c] = v

        for it in space.iterate():
            env = dict(zip(nest.indices, it))
            for stmt in nest.statements:
                execute_statement(stmt, env, scalars, read, write)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.obs.trace import current_tracer
        from repro.runtime.seq import eval_expr, subscript_coords

        nest = plan.nest
        space = plan.model.space
        nstmts = len(nest.statements)
        live = plan.live
        tracer = current_tracer()
        for b in plan.blocks:
            mem = memories[b.index]

            def read(a, c, mem=mem):
                return mem.load(a, c)

            with tracer.span("engine.block", category="engine",
                             backend=self.name, block=b.index,
                             iterations=len(b.iterations)) as sp:
                remote_before = mem.remote_attempts
                statements = 0
                for it in b.iterations:
                    env = dict(zip(nest.indices, it))
                    executed_any = False
                    for k, stmt in enumerate(nest.statements):
                        if live is not None and (k, it) not in live:
                            result.skipped_computations += 1
                            continue
                        value = eval_expr(stmt.rhs, env, scalars, read)
                        coords = subscript_coords(stmt.lhs, env)
                        mem.store(stmt.lhs.array, coords, value)
                        result.write_stamps[
                            (b.index, stmt.lhs.array, coords)] = \
                            space.rank_of(it) * nstmts + k
                        statements += 1
                        executed_any = True
                    if executed_any:
                        result.executed_iterations += 1
                sp.set(statements=statements,
                       remote_accesses=mem.remote_attempts - remote_before)


register_backend(InterpreterEngine, aliases=("interpreter", "seq", "golden"))
