"""The :class:`Engine` interface and the backend registry.

An engine implements two operations:

- :meth:`Engine.run_nest` -- execute a whole loop nest sequentially,
  in place, over :class:`~repro.runtime.arrays.DataSpace` storage
  (the ``run_sequential`` entry point);
- :meth:`Engine.run_blocks` -- execute every iteration block of a
  :class:`~repro.core.plan.PartitionPlan` into pre-allocated per-block
  :class:`~repro.machine.memory.LocalMemory` regions, filling the
  :class:`~repro.runtime.parallel.ParallelResult` counters and write
  stamps (the ``run_parallel`` entry point).

Backends register themselves under a canonical name plus aliases;
:func:`resolve_engine` walks the declared ``fallback`` chain until it
finds an available tier, so ``backend="vectorized"`` on a numpy-free
interpreter silently degrades to ``compiled`` (and ultimately
``interp``) instead of failing.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import PartitionPlan
    from repro.lang.ast import LoopNest
    from repro.lang.space import IterationSpace
    from repro.machine.memory import LocalMemory
    from repro.runtime.arrays import DataSpace
    from repro.runtime.parallel import ParallelResult

#: Default backend when neither the caller nor ``REPRO_BACKEND`` chooses.
DEFAULT_BACKEND = "interp"

#: Environment variable consulted by :func:`resolve_engine`.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailable(RuntimeError):
    """The requested backend (and its whole fallback chain) cannot run."""


class Engine:
    """One execution backend; subclasses override the two run methods."""

    #: canonical registry name
    name: str = "?"
    #: backend to degrade to when this one is unavailable / unsupported
    fallback: Optional[str] = None

    @classmethod
    def is_available(cls) -> bool:
        """Can this backend run at all in this interpreter?"""
        return True

    # -- execution --------------------------------------------------------
    def run_nest(self, nest: "LoopNest", arrays: dict[str, "DataSpace"],
                 scalars: Mapping[str, float],
                 space: "IterationSpace") -> None:
        raise NotImplementedError

    def run_blocks(self, plan: "PartitionPlan",
                   memories: dict[int, "LocalMemory"],
                   result: "ParallelResult",
                   initial: dict[str, "DataSpace"],
                   scalars: Mapping[str, float],
                   strict: bool = True) -> None:
        raise NotImplementedError

    # -- chaining ---------------------------------------------------------
    def delegate(self) -> "Engine":
        """The next engine down the fallback chain (interp terminates it)."""
        return get_engine(self.fallback or DEFAULT_BACKEND)


_REGISTRY: dict[str, type] = {}
_ALIASES: dict[str, str] = {}


def register_backend(cls: type, aliases: tuple[str, ...] = ()) -> type:
    _REGISTRY[cls.name] = cls
    for a in aliases:
        _ALIASES[a] = cls.name
    return cls


def _canonical(name: str) -> str:
    name = name.strip().lower()
    return _ALIASES.get(name, name)


def backend_names() -> list[str]:
    """Canonical names of every registered backend, tier order."""
    _load_backends()
    return list(_REGISTRY)


def available_backends() -> list[str]:
    """Registered backends whose availability check passes right now."""
    _load_backends()
    return [name for name, cls in _REGISTRY.items() if cls.is_available()]


def get_engine(name: str) -> Engine:
    """A fresh engine instance for ``name`` (alias-resolved, no fallback)."""
    _load_backends()
    canon = _canonical(name)
    cls = _REGISTRY.get(canon)
    if cls is None:
        raise BackendUnavailable(
            f"unknown backend {name!r}; known: {', '.join(backend_names())}")
    return cls()


def resolve_engine(name: Optional[str] = None) -> Engine:
    """The engine for ``name`` (or ``$REPRO_BACKEND``, or the default),
    degraded along the fallback chain until an available tier is found.

    Precedence: an explicit ``name`` wins over ``$REPRO_BACKEND``, which
    wins over :data:`DEFAULT_BACKEND`.  Every resolution is traced as an
    ``engine.resolve`` span (requested vs. resolved backend, fallback
    hops) and counted as ``engine.resolved.<name>`` in the metrics
    registry.
    """
    from repro.obs.metrics import current_registry
    from repro.obs.trace import current_tracer

    requested = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    with current_tracer().span("engine.resolve", category="engine",
                               requested=requested) as sp:
        engine = get_engine(requested)
        hops = 0
        while not engine.is_available():
            if engine.fallback is None or hops > len(_REGISTRY):
                raise BackendUnavailable(
                    f"backend {requested!r} is unavailable and has no "
                    "fallback")
            engine = get_engine(engine.fallback)
            hops += 1
        sp.set(resolved=engine.name, fallback_hops=hops)
        current_registry().inc(f"engine.resolved.{engine.name}")
    return engine


_loaded = False
_load_lock = threading.RLock()


def _load_backends() -> None:
    """Import the backend modules (idempotent; registration on import).

    Guarded by a flag rather than a non-empty registry: importing one
    backend module directly registers it, which must not stop the rest
    of the tiers from loading.  The flag flips only *after* every tier
    is imported, under a lock -- concurrent first resolutions (e.g. a
    fresh serving daemon dispatching a burst across executor threads)
    must never observe a half-populated registry.
    """
    global _loaded
    if _loaded:
        return
    with _load_lock:
        if _loaded:
            return
        from repro.runtime.engine import (  # noqa: F401
            auto,
            codegen,
            compiled,
            interp,
            multiproc,
            vectorized,
        )
        _loaded = True
