"""The execution-engine layer: pluggable backends for the runtime.

One :class:`~repro.runtime.engine.base.Engine` interface, four tiers:

- ``interp`` -- the tree-walking interpreter (the golden model);
- ``compiled`` -- statement-specialized kernels: each ``Assign`` is
  lowered once into a generated Python closure with scalars constant-
  folded and affine subscripts precomputed as stride/offset arithmetic;
- ``vectorized`` -- numpy lock-step execution: all communication-free
  blocks advance one iteration per step as whole-array operations;
- ``multiprocess`` -- fans independent blocks out across worker
  processes (legal *because* the plan is communication-free) and merges
  per-block memories and write stamps back deterministically.

``resolve_engine(name)`` honors the ``REPRO_BACKEND`` environment
variable and falls back down the chain (``vectorized`` -> ``compiled``
-> ``interp``) when a tier is unavailable (no numpy, no process pool)
or does not support a given plan.  Every backend produces bit-identical
final arrays and write stamps to the interpreter; the parity suite
(``tests/runtime/test_engine_parity.py``) pins this.
"""

from repro.runtime.engine.base import (
    BackendUnavailable,
    DEFAULT_BACKEND,
    Engine,
    available_backends,
    backend_names,
    get_engine,
    resolve_engine,
)

__all__ = [
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "Engine",
    "available_backends",
    "backend_names",
    "get_engine",
    "resolve_engine",
]
