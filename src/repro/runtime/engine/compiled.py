"""The compiled backend: statement-specialized Python kernels.

Each ``Assign`` statement is lowered *once* per (nest, scalar-bindings)
into generated Python source -- then the per-iteration work is a few
tuple constructions and dict/array indexing operations instead of a
recursive :func:`~repro.runtime.seq.eval_expr` walk:

- scalar parameters are bound at compile time and constant subtrees are
  folded (with exactly the interpreter's float arithmetic, so folding
  never changes a bit);
- affine subscripts are precomputed into stride/offset integer
  arithmetic (``2*i0 + -1``) instead of per-iteration AST evaluation;
  for sequential runs the array origin offsets are folded in too, so
  reads hit the raw backing grid directly;
- loop-index values used *as values* are materialized as floats once
  per iteration, preserving the interpreter's float-leaf semantics.

Anything the kernel compiler cannot lower (non-affine subscripts, reads
inside subscripts) raises :class:`KernelCompileError` and the engine
falls back to the interpreter for that nest, so the compiled tier never
changes observable behavior -- only speed.

For block execution the kernels index the block's
:class:`~repro.machine.memory.LocalMemory` value dict directly; a
``KeyError`` means the access fell outside the block's allocated data
blocks, and the slow path re-executes that one statement through
``LocalMemory.load/store`` to reproduce the interpreter's exact
bookkeeping and :class:`~repro.machine.memory.RemoteAccessError`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.lang.affine import NotAffineError, affine_of
from repro.lang.ast import ArrayRef, BinOp, Const, Expr, LoopNest, Name, UnaryOp
from repro.runtime.engine.base import Engine, register_backend


class KernelCompileError(ValueError):
    """The nest cannot be lowered; callers fall back to the interpreter."""


# ---------------------------------------------------------------------------
# expression lowering
# ---------------------------------------------------------------------------

def _fold(expr: Expr, indices: tuple[str, ...],
          scalars: Mapping[str, float]) -> Optional[float]:
    """Evaluate a constant subtree exactly as ``eval_expr`` would, or None."""
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Name):
        if expr.ident in indices:
            return None
        if expr.ident in scalars:
            return float(scalars[expr.ident])
        raise KeyError(
            f"unbound name {expr.ident!r}: not a loop index and no scalar "
            "binding")
    if isinstance(expr, UnaryOp):
        v = _fold(expr.operand, indices, scalars)
        return None if v is None else -v
    if isinstance(expr, BinOp):
        lv = _fold(expr.left, indices, scalars)
        rv = _fold(expr.right, indices, scalars)
        if lv is None or rv is None:
            return None
        try:
            if expr.op == "+":
                return lv + rv
            if expr.op == "-":
                return lv - rv
            if expr.op == "*":
                return lv * rv
            return lv / rv
        except ZeroDivisionError:
            return None  # defer the error to run time, like the interpreter
    return None


def _literal(value: float) -> str:
    return f"({value!r})"


def _value_src(expr: Expr, indices: tuple[str, ...],
               scalars: Mapping[str, float],
               read_src: Callable[[ArrayRef], str]) -> str:
    """Python source computing ``eval_expr(expr, ...)`` bit-for-bit."""
    folded = _fold(expr, indices, scalars)
    if folded is not None:
        return _literal(folded)
    if isinstance(expr, Name):
        # an index used as a value; _f<k> = float(i<k>) is bound per iteration
        return f"_f{indices.index(expr.ident)}"
    if isinstance(expr, UnaryOp):
        return f"(- {_value_src(expr.operand, indices, scalars, read_src)})"
    if isinstance(expr, BinOp):
        lhs = _value_src(expr.left, indices, scalars, read_src)
        rhs = _value_src(expr.right, indices, scalars, read_src)
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, ArrayRef):
        return read_src(expr)
    raise KernelCompileError(f"cannot lower {expr!r}")


def _coord_srcs(ref: ArrayRef, indices: tuple[str, ...],
                origin: Optional[tuple[int, ...]] = None) -> list[str]:
    """Per-dimension integer index sources (affine stride/offset form).

    ``origin`` folds a backing-grid origin (``DataSpace.lo``) into the
    constant term.  Non-integral affine subscripts mirror the
    interpreter's ``int(float-eval)`` truncation.
    """
    out: list[str] = []
    for d, sub in enumerate(ref.subscripts):
        shift = origin[d] if origin is not None else 0
        try:
            ae = affine_of(sub, indices)
        except NotAffineError as exc:
            raise KernelCompileError(
                f"subscript of {ref.array} is not affine: {exc}") from exc
        if ae.is_integral():
            terms = []
            for k, a in enumerate(ae.coeffs):
                a = int(a)
                if a == 0:
                    continue
                terms.append(f"i{k}" if a == 1 else f"{a}*i{k}")
            const = int(ae.const) - shift
            if const or not terms:
                terms.append(str(const))
            out.append(" + ".join(terms))
        else:
            # rational coefficients: reproduce int(eval_expr(sub)) exactly
            src = _value_src(sub, indices, {}, _no_reads)
            out.append(f"int({src}) - {shift}" if shift else f"int({src})")
    return out


def _no_reads(ref: ArrayRef) -> str:
    raise KernelCompileError(
        f"array read of {ref.array} inside a subscript")


def _tuple_src(parts: list[str]) -> str:
    inner = ", ".join(parts)
    return f"({inner},)" if len(parts) == 1 else f"({inner})"


def _iteration_prelude(depth: int, used_as_value: set[int]) -> list[str]:
    unpack = ", ".join(f"i{k}" for k in range(depth))
    lines = [f"{unpack}{',' if depth == 1 else ''} = _it"]
    lines += [f"_f{k} = float(i{k})" for k in sorted(used_as_value)]
    return lines


def _value_indices(nest: LoopNest) -> set[int]:
    """Loop-index positions that appear *as values* (outside subscripts)."""
    idx = {name: k for k, name in enumerate(nest.indices)}
    used: set[int] = set()

    def visit(expr: Expr) -> None:
        if isinstance(expr, Name) and expr.ident in idx:
            used.add(idx[expr.ident])
        elif isinstance(expr, UnaryOp):
            visit(expr.operand)
        elif isinstance(expr, BinOp):
            visit(expr.left)
            visit(expr.right)
        # ArrayRef: subscripts are index *coordinates*, not values

    for stmt in nest.statements:
        visit(stmt.rhs)
    return used


def _compile(src: str, name: str, namespace: dict) -> Callable:
    code = compile(src, f"<repro-kernel:{name}>", "exec")
    exec(code, namespace)
    return namespace[name]


#: (kind, nest, scalars, ...) -> compiled function
_KERNEL_CACHE: dict[tuple, Callable] = {}


# ---------------------------------------------------------------------------
# sequential whole-nest kernel
# ---------------------------------------------------------------------------

def compile_nest_kernel(nest: LoopNest, scalars: Mapping[str, float],
                        origins: Mapping[str, tuple[int, ...]]) -> Callable:
    """``fn(points, grids)`` executing the whole nest over raw grids.

    ``grids`` maps array name -> backing grid (``DataSpace.data``);
    origins are folded into the generated index arithmetic.
    """
    names = nest.array_names()
    key = ("nest", nest, tuple(sorted(scalars.items())),
           tuple((n, tuple(origins[n])) for n in names))
    fn = _KERNEL_CACHE.get(key)
    if fn is not None:
        return fn
    indices = nest.indices
    gvar = {n: f"_g{j}" for j, n in enumerate(names)}

    def read_src(ref: ArrayRef) -> str:
        coords = _coord_srcs(ref, indices, origin=origins[ref.array])
        return f"{gvar[ref.array]}[{_tuple_src(coords)}]"

    body: list[str] = []
    for stmt in nest.statements:
        val = _value_src(stmt.rhs, indices, scalars, read_src)
        lhs = _coord_srcs(stmt.lhs, indices, origin=origins[stmt.lhs.array])
        body.append(
            f"{gvar[stmt.lhs.array]}[{_tuple_src(lhs)}] = float({val})")

    lines = ["def _nest_kernel(_points, _grids):"]
    for n in names:
        lines.append(f"    {gvar[n]} = _grids[{n!r}]")
    lines.append("    for _it in _points:")
    for pl in _iteration_prelude(nest.depth, _value_indices(nest)):
        lines.append(f"        {pl}")
    for b in body:
        lines.append(f"        {b}")
    fn = _compile("\n".join(lines), "_nest_kernel", {})
    _KERNEL_CACHE[key] = fn
    return fn


# ---------------------------------------------------------------------------
# per-block kernel
# ---------------------------------------------------------------------------

def compile_block_kernel(nest: LoopNest, scalars: Mapping[str, float],
                         has_live: bool,
                         rank_rect: Optional[tuple[tuple[int, ...],
                                                   tuple[int, ...]]]) -> Callable:
    """``fn(bindex, iterations, values, stamps, live, rank_of, remote)``.

    Executes one iteration block over its LocalMemory value dicts,
    recording write stamps inline (closed-form lexicographic rank when
    the space is rectangular).  Returns ``(executed_iterations,
    per-statement execution counts)``.
    """
    key = ("block", nest, tuple(sorted(scalars.items())), has_live, rank_rect)
    fn = _KERNEL_CACHE.get(key)
    if fn is not None:
        return fn
    indices = nest.indices
    nstmts = len(nest.statements)
    names = nest.array_names()
    vvar = {n: f"_v{j}" for j, n in enumerate(names)}

    def read_src(ref: ArrayRef) -> str:
        coords = _coord_srcs(ref, indices)
        return f"{vvar[ref.array]}[{_tuple_src(coords)}]"

    if rank_rect is not None:
        los, strides = rank_rect
        terms = [f"(i{k} - {lo}) * {s}" if s != 1 else f"(i{k} - {lo})"
                 for k, (lo, s) in enumerate(zip(los, strides)) if s != 0]
        rank_src = " + ".join(terms) or "0"
    else:
        rank_src = "_rank_of(_it)"

    lines = ["def _block_kernel(_bindex, _iters, _values, _stamps, _live, "
             "_rank_of, _remote):"]
    for n in names:
        lines.append(f"    {vvar[n]} = _values[{n!r}]")
    for k in range(nstmts):
        lines.append(f"    _n{k} = 0")
    lines.append("    _ex = 0")
    lines.append("    for _it in _iters:")
    ind = "        "
    for pl in _iteration_prelude(nest.depth, _value_indices(nest)):
        lines.append(ind + pl)
    lines.append(ind + f"_r = ({rank_src}) * {nstmts}")
    if has_live:
        lines.append(ind + "_any = False")
    for k, stmt in enumerate(nest.statements):
        sind = ind
        if has_live:
            lines.append(ind + f"if ({k}, _it) in _live:")
            sind = ind + "    "
        val = _value_src(stmt.rhs, indices, scalars, read_src)
        lhs = _coord_srcs(stmt.lhs, indices)
        wvar = vvar[stmt.lhs.array]
        lines += [
            sind + "try:",
            sind + f"    _val = float({val})",
            sind + f"    _k = {_tuple_src(lhs)}",
            sind + f"    if _k not in {wvar}:",
            sind + "        raise KeyError(_k)",
            sind + f"    {wvar}[_k] = _val",
            sind + f"    _stamps[(_bindex, {stmt.lhs.array!r}, _k)] = "
                   f"_r + {k}",
            sind + "except KeyError:",
            sind + f"    _remote({k}, _it)",
            sind + f"_n{k} += 1",
        ]
        if has_live:
            lines.append(sind + "_any = True")
    if has_live:
        lines += [ind + "if _any:", ind + "    _ex += 1"]
    else:
        lines.append(ind + "_ex += 1")
    counts = ", ".join(f"_n{k}" for k in range(nstmts))
    lines.append(f"    return _ex, ({counts},)")
    fn = _compile("\n".join(lines), "_block_kernel", {})
    _KERNEL_CACHE[key] = fn
    return fn


def _reads_per_statement(nest: LoopNest) -> list[int]:
    """Array reads the interpreter issues per execution of each statement."""
    return [len(list(stmt.rhs.array_refs())) for stmt in nest.statements]


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class CompiledEngine(Engine):
    """Statement-specialized kernels; falls back to interp when a nest
    cannot be lowered or when ``strict=False`` bookkeeping is requested."""

    name = "compiled"
    fallback = "interp"

    def run_nest(self, nest, arrays, scalars, space) -> None:
        try:
            kernel = compile_nest_kernel(
                nest, scalars, {n: arrays[n].lo for n in nest.array_names()})
        except KernelCompileError:
            self.delegate().run_nest(nest, arrays, scalars, space)
            return
        grids = {n: arrays[n].data for n in nest.array_names()}
        kernel(space.points(), grids)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.runtime.seq import eval_expr, subscript_coords

        nest = plan.nest
        space = plan.model.space
        live = plan.live
        try:
            kernel = compile_block_kernel(nest, scalars, live is not None,
                                          space.rank_strides())
        except KernelCompileError:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        if not strict:
            # tolerant remote-access bookkeeping needs element-wise
            # LocalMemory traffic; the interpreter is the only tier that
            # models it faithfully
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        from repro.obs.trace import current_tracer

        nreads = _reads_per_statement(nest)
        stamps = result.write_stamps
        tracer = current_tracer()
        for b in plan.blocks:
            mem = memories[b.index]

            def remote(k, it, mem=mem):
                # slow path: one statement through LocalMemory, which
                # re-counts its reads and raises RemoteAccessError
                stmt = nest.statements[k]
                env = dict(zip(nest.indices, it))
                value = eval_expr(stmt.rhs, env, scalars,
                                  lambda a, c: mem.load(a, c))
                mem.store(stmt.lhs.array, subscript_coords(stmt.lhs, env),
                          value)
                raise AssertionError(
                    "compiled kernel raised KeyError but the interpreter "
                    "slow path found every element local")  # pragma: no cover

            with tracer.span("engine.block", category="engine",
                             backend=self.name, block=b.index,
                             iterations=len(b.iterations)) as sp:
                remote_before = mem.remote_attempts
                executed, counts = kernel(b.index, b.iterations, mem.values,
                                          stamps, live, space.rank_of, remote)
                result.executed_iterations += executed
                for k, n in enumerate(counts):
                    mem.writes += n
                    mem.reads += n * nreads[k]
                    if live is not None:
                        result.skipped_computations += len(b.iterations) - n
                sp.set(statements=sum(counts),
                       remote_accesses=mem.remote_attempts - remote_before)


register_backend(CompiledEngine, aliases=("kernel", "kernels", "jit"))
