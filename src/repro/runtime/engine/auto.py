"""Size/geometry-aware backend selection (the real ``auto`` tier).

``auto`` used to be a registry shim that picked the highest *available*
tier regardless of the work; that loses badly at both ends -- a 16^2
nest pays a process pool's startup for nothing, a fan-out-sized nest
leaves the pool idle.  This engine inspects the plan before choosing:

- small nests (total iterations <= ``REPRO_AUTO_SMALL``, default 2048)
  run on the codegen tier: per-plan specialization beats every other
  tier's fixed setup at that size, and its kernels amortize via the
  on-disk cache anyway;
- otherwise the vectorized tier takes any plan it supports (lock-step
  numpy lanes are the fastest in-process execution we have);
- genuinely large multi-block plans (>= ``REPRO_AUTO_FANOUT``
  iterations, default 32768, at least two blocks and two cores) fan
  out across the process pool;
- everything else -- mid-sized, numpy-free, single-block -- stays on
  codegen, whose own fallback chain (compiled, then interp) absorbs
  unsupported plans.

The decision is observable: ``engine.auto.choice.<backend>`` counts
each pick, an ``engine.auto.choice`` event records the reason, and the
run's :class:`~repro.runtime.parallel.ParallelResult` reports the
*chosen* backend, not ``auto``.
"""

from __future__ import annotations

import os

from repro.runtime.engine.base import Engine, get_engine, register_backend

#: Below this many total iterations, specialization always wins.
SMALL_ENV_VAR = "REPRO_AUTO_SMALL"
DEFAULT_SMALL = 2048

#: At or above this many total iterations, fan-out can pay for a pool.
FANOUT_ENV_VAR = "REPRO_AUTO_FANOUT"
DEFAULT_FANOUT = 32768


def _threshold(var: str, default: int) -> int:
    try:
        return int(os.environ.get(var, default))
    except ValueError:
        return default


def choose_backend(plan) -> tuple[str, str]:
    """-> (backend name, reason) for one plan."""
    total = sum(len(b.iterations) for b in plan.blocks)
    if total <= _threshold(SMALL_ENV_VAR, DEFAULT_SMALL):
        return "codegen", f"small nest ({total} iterations)"
    from repro.runtime.engine import vectorized

    if vectorized.VectorizedEngine.is_available() \
            and vectorized.supports_plan(plan):
        return "vectorized", f"vectorizable ({total} iterations)"
    from repro.runtime.engine.multiproc import MultiprocessEngine

    if (total >= _threshold(FANOUT_ENV_VAR, DEFAULT_FANOUT)
            and len(plan.blocks) > 1
            and (os.cpu_count() or 1) >= 2
            and MultiprocessEngine.is_available()):
        return "multiprocess", f"fan-out sized ({total} iterations, " \
                               f"{len(plan.blocks)} blocks)"
    return "codegen", f"mid-sized ({total} iterations)"


class AutoEngine(Engine):
    """Plan-inspecting dispatch to the cheapest adequate tier."""

    name = "auto"
    fallback = "codegen"

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # sequential nests have no geometry to inspect; the codegen
        # tier's own chain (compiled -> interp) already picks well
        self.delegate().run_nest(nest, arrays, scalars, space)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        chosen, reason = choose_backend(plan)
        engine = get_engine(chosen)
        while not engine.is_available():  # pragma: no cover - availability
            engine = engine.delegate()
        current_registry().inc(f"engine.auto.choice.{engine.name}")
        current_tracer().event("engine.auto.choice", category="engine",
                               chosen=engine.name, reason=reason)
        result.backend = engine.name
        engine.run_blocks(plan, memories, result, initial, scalars,
                          strict=strict)


register_backend(AutoEngine)
