"""The multiprocess backend: blocks fanned out across worker processes.

Communication-freedom is exactly the property that makes this trivial:
iteration blocks touch disjoint written data, so each worker can
execute its share of blocks against its own copies of their local
memories with *zero* coordination, and the parent merges the results
back deterministically (units are merged in block order, and write
stamps are keyed by block index, so the merge is independent of worker
scheduling).

Dispatch is delegated to the fault-tolerant
:class:`~repro.runtime.scheduler.BlockScheduler`: blocks are leased to
workers in small batches with deadlines, lost or expired leases are
retried on surviving workers (safely -- block-disjointness is
re-asserted against the plan's partition metadata first), crashed pools
are respawned, and an active :class:`~repro.runtime.scheduler.FaultPlan`
(``REPRO_CHAOS`` / ``use_fault_plan``) injects worker crashes, delays
and lost results to exercise all of that on demand.  The old static
one-chunk-per-worker split survives as the degenerate scheduler
configuration (``REPRO_SCHED=static``).

Each worker runs the ``compiled`` tier on its unit under its *own*
scoped tracer and metrics registry; the resulting spans, events and
metric deltas travel back with the lease result and are merged into the
parent's recorders (:mod:`repro.obs.aggregate`), so a Chrome trace of a
multiprocess run shows one lane per worker process anchored under the
``scheduler.run`` span.  A
:class:`~repro.machine.memory.RemoteAccessError` cannot cross a process
boundary (its constructor signature defeats pickling), so workers catch
it and return a marker; the parent re-raises the first one in block
order -- the same violation the interpreter would have hit first.

If a process pool cannot be created at all (sandboxes, missing fork),
or the scheduler's respawn budget collapses, the engine degrades to the
compiled tier in-process -- counted as ``engine.multiproc.degraded``
and diagnosed on stderr, so a ~1x "speedup" is explainable instead of
silent.  A :class:`~repro.runtime.scheduler.SchedulerError` (chaos the
recovery policy could not absorb) is *not* degraded: it propagates, so
non-recovery is an error, never a silent slow path.
"""

from __future__ import annotations

import os
import sys

from repro.runtime.engine.base import Engine, register_backend
from repro.runtime.scheduler import (
    BlockScheduler,
    PoolCollapse,
    current_fault_plan,
)

#: Environment variable overriding the worker count.
WORKERS_ENV_VAR = "REPRO_MP_WORKERS"

_MAX_WORKERS = 8


def worker_count(nblocks: int) -> int:
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, min(int(env), nblocks))
    return max(1, min(os.cpu_count() or 1, _MAX_WORKERS, nblocks))


class MultiprocessEngine(Engine):
    """Scheduled fan-out of independent blocks over a process pool."""

    name = "multiprocess"
    fallback = "compiled"

    @classmethod
    def is_available(cls) -> bool:
        try:
            import concurrent.futures  # noqa: F401
            import multiprocessing

            multiprocessing.cpu_count()
            return True
        except (ImportError, NotImplementedError):  # pragma: no cover
            return False

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # a sequential nest is one dependence chain; nothing to fan out
        self.delegate().run_nest(nest, arrays, scalars, space)

    def _degrade(self, exc, plan, memories, result, initial, scalars,
                 strict: bool) -> None:
        """No process pool in this environment: run in-process instead,
        but say so -- a silent fallback reads as a broken speedup."""
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        from repro.obs.flight import flight

        reason = f"{type(exc).__name__}: {exc}"
        current_registry().inc("engine.multiproc.degraded")
        current_tracer().event("engine.multiproc.degraded",
                               category="engine", reason=reason)
        flight().error("engine.multiproc.degraded", exc)
        print(f"repro: multiprocess pool unavailable ({reason}); "
              "degrading to the compiled tier in-process", file=sys.stderr)
        self.delegate().run_blocks(plan, memories, result, initial,
                                   scalars, strict=strict)

    def _make_store(self, plan, memories, scalars):
        """A SharedBlockStore for by-descriptor leases, or None.

        None (the by-value copy-through path) when shared memory is off
        (``REPRO_NO_SHM``, no numpy, no ``shared_memory`` module), when
        the nest cannot be lowered to a store kernel, or when segment
        creation itself fails -- the store is an optimization, never a
        requirement.
        """
        from repro.obs.trace import current_tracer
        from repro.runtime.blockstore import SharedBlockStore, shm_available
        from repro.runtime.blockstore.kernel import (
            KernelCompileError,
            compile_store_kernel,
        )

        if not shm_available():
            return None
        try:
            compile_store_kernel(plan.nest, scalars, plan.live is not None,
                                 plan.model.space.rank_strides())
            store = SharedBlockStore(plan, memories)
            store.codegen_key = self._codegen_key(plan, scalars)
            return store
        except KernelCompileError:
            return None
        except Exception as exc:  # pragma: no cover - shm-less platforms
            current_tracer().event("engine.shm.unavailable",
                                   category="engine",
                                   reason=f"{type(exc).__name__}: {exc}")
            return None

    @staticmethod
    def _codegen_key(plan, scalars):
        """The codegen store-kernel key for the descriptor, or None.

        Emits (and persists) the specialized kernel once in the parent
        so workers attach by key; anything unsupported -- including an
        unset certificate -- simply leaves the generic dict kernel in
        charge.  Disabled alongside the disk cache: without persistence
        a spawn-fresh worker would re-emit per process.
        """
        try:
            from repro.runtime.engine.codegen.diskcache import get_disk_cache
            from repro.runtime.engine.codegen.storegen import (
                prepare_store_kernel,
            )

            if get_disk_cache() is None:
                return None
            return prepare_store_kernel(plan, dict(scalars))
        except Exception:  # pragma: no cover - codegen is optional here
            return None

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer
        from repro.runtime.pool import current_pool

        if not strict or not plan.blocks:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        if len(plan.blocks) == 1:
            # a single block has nothing to fan out: the pool would be
            # pure overhead, so run the compiled tier in-process -- an
            # expected fast path, not a degradation
            current_registry().inc("engine.multiproc.single_block")
            current_tracer().event("engine.multiproc.single_block",
                                   category="engine", blocks=1)
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        nw = worker_count(len(plan.blocks))
        store = self._make_store(plan, memories, dict(scalars))
        scheduler = BlockScheduler(
            plan, memories, scalars, workers=nw,
            faults=current_fault_plan(), store=store, pool=current_pool())
        try:
            scheduler.run(result)
        except (PoolCollapse, OSError, PermissionError, ValueError,
                RuntimeError, ImportError) as exc:
            # SchedulerError deliberately excluded: exhausting the retry
            # policy under chaos is a hard failure, not a fallback
            self._degrade(exc, plan, memories, result, initial, scalars,
                          strict)
        finally:
            if store is not None:
                store.close(unlink=True)


register_backend(MultiprocessEngine, aliases=("mp", "processes", "pool"))
