"""The multiprocess backend: blocks fanned out across worker processes.

Communication-freedom is exactly the property that makes this trivial:
iteration blocks touch disjoint written data, so each worker can
execute its share of blocks against its own copies of their local
memories with *zero* coordination, and the parent merges the results
back deterministically (chunks are merged in block order, and write
stamps are keyed by block index, so the merge is independent of worker
scheduling).

Each worker runs the ``compiled`` tier on its chunk.  A
:class:`~repro.machine.memory.RemoteAccessError` cannot cross a process
boundary (its constructor signature defeats pickling), so workers catch
it and return a marker tuple; the parent re-raises the first one in
block order -- the same violation the interpreter would have hit first.

If a process pool cannot be created at all (sandboxes, missing fork),
the engine degrades to the compiled tier in-process.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.machine.memory import RemoteAccessError
from repro.runtime.engine.base import Engine, register_backend

#: Environment variable overriding the worker count.
WORKERS_ENV_VAR = "REPRO_MP_WORKERS"

_MAX_WORKERS = 8


class _ChunkResult:
    """ParallelResult stand-in a worker can fill and pickle back."""

    def __init__(self):
        self.write_stamps = {}
        self.executed_iterations = 0
        self.skipped_computations = 0


def _run_chunk(payload):
    """Worker entry point: run one chunk of blocks on the compiled tier."""
    sub, mems, scalars = payload
    from repro.runtime.engine.base import get_engine

    res = _ChunkResult()
    try:
        get_engine("compiled").run_blocks(sub, mems, res, {}, scalars,
                                          strict=True)
    except RemoteAccessError as exc:
        return ("remote", exc.pid, exc.array, exc.coords)
    return ("ok", mems, res.write_stamps, res.executed_iterations,
            res.skipped_computations)


def worker_count(nblocks: int) -> int:
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, min(int(env), nblocks))
    return max(1, min(os.cpu_count() or 1, _MAX_WORKERS, nblocks))


class MultiprocessEngine(Engine):
    """ProcessPoolExecutor fan-out of independent blocks."""

    name = "multiprocess"
    fallback = "compiled"

    @classmethod
    def is_available(cls) -> bool:
        try:
            import concurrent.futures  # noqa: F401
            import multiprocessing

            multiprocessing.cpu_count()
            return True
        except (ImportError, NotImplementedError):  # pragma: no cover
            return False

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # a sequential nest is one dependence chain; nothing to fan out
        self.delegate().run_nest(nest, arrays, scalars, space)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        if not strict or not plan.blocks:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        from concurrent.futures import ProcessPoolExecutor

        nw = worker_count(len(plan.blocks))
        # contiguous chunks preserve block order for deterministic merge
        per = -(-len(plan.blocks) // nw)
        chunks = [plan.blocks[i:i + per]
                  for i in range(0, len(plan.blocks), per)]
        # sub-plans are built in the parent so only dataclass fields
        # (never runtime caches attached to the full plan) get pickled
        payloads = [
            (replace(plan, blocks=chunk),
             {b.index: memories[b.index] for b in chunk}, dict(scalars))
            for chunk in chunks
        ]
        from repro.obs.trace import current_tracer

        try:
            # worker-side spans die with the worker process; the parent
            # records the fan-out geometry instead
            with current_tracer().span(
                    "engine.fanout", category="engine", backend=self.name,
                    workers=nw, chunks=len(chunks),
                    blocks=len(plan.blocks)):
                with ProcessPoolExecutor(max_workers=nw) as pool:
                    outcomes = list(pool.map(_run_chunk, payloads))
        except (OSError, PermissionError, ValueError, RuntimeError,
                ImportError):
            # no process pool in this environment: run in-process instead
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return

        # merge in submission (= block) order: deterministic by design
        for out in outcomes:
            if out[0] == "remote":
                _, pid, array, coords = out
                memories[pid].remote_attempts += 1
                raise RemoteAccessError(pid, array, coords)
        for out in outcomes:
            _, mems, stamps, executed, skipped = out
            for pid, worker_mem in mems.items():
                mem = memories[pid]
                mem.values = worker_mem.values
                mem.allocated = worker_mem.allocated
                mem.reads = worker_mem.reads
                mem.writes = worker_mem.writes
                mem.remote_attempts = worker_mem.remote_attempts
            result.write_stamps.update(stamps)
            result.executed_iterations += executed
            result.skipped_computations += skipped


register_backend(MultiprocessEngine, aliases=("mp", "processes", "pool"))
