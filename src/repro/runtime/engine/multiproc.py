"""The multiprocess backend: blocks fanned out across worker processes.

Communication-freedom is exactly the property that makes this trivial:
iteration blocks touch disjoint written data, so each worker can
execute its share of blocks against its own copies of their local
memories with *zero* coordination, and the parent merges the results
back deterministically (chunks are merged in block order, and write
stamps are keyed by block index, so the merge is independent of worker
scheduling).

Each worker runs the ``compiled`` tier on its chunk under its *own*
scoped tracer and metrics registry; the resulting spans, events and
metric deltas travel back through the picklable :class:`_ChunkResult`
and are merged into the parent's recorders
(:mod:`repro.obs.aggregate`), so a Chrome trace of a multiprocess run
shows one lane per worker process and parent-side metric totals equal
the sum over workers.  A
:class:`~repro.machine.memory.RemoteAccessError` cannot cross a process
boundary (its constructor signature defeats pickling), so workers catch
it and return a marker; the parent re-raises the first one in block
order -- the same violation the interpreter would have hit first.

If a process pool cannot be created at all (sandboxes, missing fork),
the engine degrades to the compiled tier in-process -- counted as
``engine.multiproc.degraded`` and diagnosed on stderr, so a ~1x
"speedup" is explainable instead of silent.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.machine.memory import RemoteAccessError
from repro.runtime.engine.base import Engine, register_backend

#: Environment variable overriding the worker count.
WORKERS_ENV_VAR = "REPRO_MP_WORKERS"

_MAX_WORKERS = 8


@dataclass
class _ChunkResult:
    """Per-chunk outcome a worker fills and pickles back to the parent.

    The counter/stamp fields double as the ``ParallelResult`` stand-in
    the compiled tier fills during worker-side execution; ``remote``
    carries the first violation (RemoteAccessError itself defeats
    pickling) and ``obs`` the worker's observability delta.
    """

    write_stamps: dict = field(default_factory=dict)
    executed_iterations: int = 0
    skipped_computations: int = 0
    mems: dict = field(default_factory=dict)
    # (pid, array, coords, is_write) of the first violation, or None
    remote: Optional[tuple] = None
    obs: Any = None  # WorkerObs


def _run_chunk(payload):
    """Worker entry point: run one chunk of blocks on the compiled tier."""
    sub, mems, scalars, trace_enabled = payload
    from repro.obs.aggregate import capture_worker_obs
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.trace import Tracer, use_tracer
    from repro.runtime.engine.base import get_engine

    tracer = Tracer(enabled=trace_enabled)
    registry = MetricsRegistry()
    res = _ChunkResult()
    with use_tracer(tracer), use_registry(registry):
        registry.inc("engine.worker.chunks")
        registry.inc("engine.worker.blocks", len(sub.blocks))
        try:
            get_engine("compiled").run_blocks(sub, mems, res, {}, scalars,
                                              strict=True)
        except RemoteAccessError as exc:
            res.remote = (exc.pid, exc.array, exc.coords, exc.is_write)
        registry.inc("engine.worker.executed_iterations",
                     res.executed_iterations)
    res.mems = mems
    res.obs = capture_worker_obs(tracer, registry)
    return res


def worker_count(nblocks: int) -> int:
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, min(int(env), nblocks))
    return max(1, min(os.cpu_count() or 1, _MAX_WORKERS, nblocks))


class MultiprocessEngine(Engine):
    """ProcessPoolExecutor fan-out of independent blocks."""

    name = "multiprocess"
    fallback = "compiled"

    @classmethod
    def is_available(cls) -> bool:
        try:
            import concurrent.futures  # noqa: F401
            import multiprocessing

            multiprocessing.cpu_count()
            return True
        except (ImportError, NotImplementedError):  # pragma: no cover
            return False

    def run_nest(self, nest, arrays, scalars, space) -> None:
        # a sequential nest is one dependence chain; nothing to fan out
        self.delegate().run_nest(nest, arrays, scalars, space)

    def _degrade(self, exc, plan, memories, result, initial, scalars,
                 strict: bool) -> None:
        """No process pool in this environment: run in-process instead,
        but say so -- a silent fallback reads as a broken speedup."""
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        reason = f"{type(exc).__name__}: {exc}"
        current_registry().inc("engine.multiproc.degraded")
        current_tracer().event("engine.multiproc.degraded",
                               category="engine", reason=reason)
        print(f"repro: multiprocess pool unavailable ({reason}); "
              "degrading to the compiled tier in-process", file=sys.stderr)
        self.delegate().run_blocks(plan, memories, result, initial,
                                   scalars, strict=strict)

    def run_blocks(self, plan, memories, result, initial, scalars,
                   strict: bool = True) -> None:
        if not strict or not plan.blocks:
            self.delegate().run_blocks(plan, memories, result, initial,
                                       scalars, strict=strict)
            return
        from concurrent.futures import ProcessPoolExecutor

        from repro.obs.aggregate import merge_worker_obs
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        nw = worker_count(len(plan.blocks))
        # contiguous chunks preserve block order for deterministic merge
        per = -(-len(plan.blocks) // nw)
        chunks = [plan.blocks[i:i + per]
                  for i in range(0, len(plan.blocks), per)]
        # sub-plans are built in the parent so only dataclass fields
        # (never runtime caches attached to the full plan) get pickled
        payloads = [
            (replace(plan, blocks=chunk),
             {b.index: memories[b.index] for b in chunk}, dict(scalars),
             tracer.enabled)
            for chunk in chunks
        ]

        try:
            # worker-side spans are captured in the workers and merged
            # below; the parent's fan-out span records the geometry and
            # anchors the worker lanes on the parent timeline
            with tracer.span(
                    "engine.fanout", category="engine", backend=self.name,
                    workers=nw, chunks=len(chunks),
                    blocks=len(plan.blocks)) as fsp:
                with ProcessPoolExecutor(max_workers=nw) as pool:
                    outcomes = list(pool.map(_run_chunk, payloads))
        except (OSError, PermissionError, ValueError, RuntimeError,
                ImportError) as exc:
            self._degrade(exc, plan, memories, result, initial, scalars,
                          strict)
            return

        # re-home worker observability before anything can raise, so
        # even an aborted run keeps its worker lanes and counters
        registry = current_registry()
        offset = fsp.start_ns if fsp.recording else 0
        parent_id = fsp.span_id if fsp.recording else None
        for out in outcomes:
            if out.obs is not None:
                merge_worker_obs(tracer, registry, out.obs,
                                 ts_offset_ns=offset,
                                 parent_span_id=parent_id)

        # merge in submission (= block) order: deterministic by design
        for out in outcomes:
            if out.remote is not None:
                pid, array, coords, is_write = out.remote
                memories[pid].note_remote(is_write)
                raise RemoteAccessError(pid, array, coords,
                                        is_write=is_write)
        for out in outcomes:
            for pid, worker_mem in out.mems.items():
                mem = memories[pid]
                mem.values = worker_mem.values
                mem.allocated = worker_mem.allocated
                mem.reads = worker_mem.reads
                mem.writes = worker_mem.writes
                mem.remote_attempts = worker_mem.remote_attempts
                mem.remote_read_attempts = worker_mem.remote_read_attempts
                mem.remote_write_attempts = worker_mem.remote_write_attempts
            result.write_stamps.update(out.write_stamps)
            result.executed_iterations += out.executed_iterations
            result.skipped_computations += out.skipped_computations


register_backend(MultiprocessEngine, aliases=("mp", "processes", "pool"))
