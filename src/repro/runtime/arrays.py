"""Array storage for the interpreters.

:class:`DataSpace` wraps a ``float64`` grid (a numpy array when numpy is
available, a pure-Python :class:`~repro.runtime.numpy_compat.PyGrid`
otherwise) with per-dimension origin offsets so the paper's arbitrary
subscript ranges (e.g. array A of L1 spanning ``[0:8, 0:4]``) map
directly.  Footprints are computed exactly: a reference ``H i + c`` is
affine, so its componentwise extrema over the iteration space's bounding
box occur at box corners.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional

from repro.analysis.references import ReferenceModel
from repro.ratlinalg.matrix import RatVec
from repro.runtime import numpy_compat as npc

Coords = tuple[int, ...]


class DataSpace:
    """A dense array over ``[lo_1:hi_1, ..., lo_d:hi_d]`` (inclusive)."""

    def __init__(self, name: str, lo: Coords, hi: Coords, fill: float = 0.0):
        if len(lo) != len(hi):
            raise ValueError("lo/hi rank mismatch")
        if any(l > h for l, h in zip(lo, hi)):
            raise ValueError(f"empty DataSpace bounds {lo}..{hi}")
        self.name = name
        self.lo = tuple(lo)
        self.hi = tuple(hi)
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        self.data = npc.full(shape, fill)

    @property
    def rank(self) -> int:
        return len(self.lo)

    def _pos(self, coords: Coords) -> tuple[int, ...]:
        if len(coords) != self.rank:
            raise IndexError(f"{self.name}: rank mismatch {coords}")
        pos = tuple(int(c) - l for c, l in zip(coords, self.lo))
        for p, s in zip(pos, self.data.shape):
            if not 0 <= p < s:
                raise IndexError(f"{self.name}{list(coords)} outside "
                                 f"[{self.lo}..{self.hi}]")
        return pos

    def __getitem__(self, coords: Coords) -> float:
        return float(self.data[self._pos(tuple(coords))])

    def __setitem__(self, coords: Coords, value: float) -> None:
        self.data[self._pos(tuple(coords))] = value

    def __contains__(self, coords: Coords) -> bool:
        try:
            self._pos(tuple(coords))
            return True
        except IndexError:
            return False

    def coords_iter(self) -> Iterable[Coords]:
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        return itertools.product(*ranges)

    def fill_with(self, fn: Callable[[Coords], float]) -> "DataSpace":
        for c in self.coords_iter():
            self[c] = fn(c)
        return self

    def copy(self) -> "DataSpace":
        out = DataSpace(self.name, self.lo, self.hi)
        out.data = self.data.copy()
        return out

    def linear_index(self, coords):
        """Flat (row-major) backing-grid offsets of ``coords``.

        ``coords`` is an ``(n, rank)`` integer ndarray of *array*
        coordinates; the origin offsets (``lo``) are subtracted per
        dimension, exactly as :meth:`_pos` does element-wise, so views
        taken through these offsets line up with block-boundary
        elements of arrays whose subscript ranges do not start at zero.
        Out-of-bounds coordinates raise ``IndexError``.  Requires the
        numpy backing (the vectorized merge path is the only caller).
        """
        np = npc.np
        if np is None:
            raise RuntimeError("linear_index requires the numpy backing")
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.rank:
            raise IndexError(f"{self.name}: expected (n, {self.rank}) "
                             f"coords, got {coords.shape}")
        pos = coords - np.array(self.lo, dtype=np.int64)
        shape = np.array(self.data.shape, dtype=np.int64)
        if ((pos < 0) | (pos >= shape)).any():
            raise IndexError(f"{self.name}: coordinates outside "
                             f"[{self.lo}..{self.hi}]")
        strides = np.ones(self.rank, dtype=np.int64)
        for k in range(self.rank - 2, -1, -1):
            strides[k] = strides[k + 1] * shape[k + 1]
        return pos @ strides

    def allclose(self, other: "DataSpace", **kw) -> bool:
        return (self.lo == other.lo and self.hi == other.hi
                and npc.allclose(self.data, other.data, **kw))

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataSpace):
            return NotImplemented
        return (self.lo == other.lo and self.hi == other.hi
                and npc.array_equal(self.data, other.data))

    def __repr__(self) -> str:
        return f"DataSpace({self.name}[{self.lo}..{self.hi}])"


def array_footprints(model: ReferenceModel) -> dict[str, tuple[Coords, Coords]]:
    """Exact per-array (lo, hi) coordinate bounds over all references.

    Evaluates every reference at every corner of the iteration bounding
    box; affine maps attain componentwise extrema at corners, so this
    covers every accessed element (and is tight for rectangular spaces).
    """
    lo_box, hi_box = model.space.bounding_box()
    corners = list(itertools.product(*[(l, h) for l, h in zip(lo_box, hi_box)]))
    out: dict[str, tuple[Coords, Coords]] = {}
    for name, info in model.arrays.items():
        lo: Optional[list[int]] = None
        hi: Optional[list[int]] = None
        for ref in info.references:
            for corner in corners:
                e = info.element_at(corner, ref.offset)
                if lo is None:
                    lo, hi = list(e), list(e)
                else:
                    lo = [min(a, b) for a, b in zip(lo, e)]
                    hi = [max(a, b) for a, b in zip(hi, e)]
        assert lo is not None and hi is not None
        out[name] = (tuple(lo), tuple(hi))
    return out


def default_init(array: str) -> Callable[[Coords], float]:
    """A deterministic, array-specific initializer.

    Values vary across elements and arrays so that verification is
    sensitive to misplaced reads; purely integer-combination based to
    stay bit-reproducible.
    """
    salt = sum((i + 1) * ord(ch) for i, ch in enumerate(array)) % 97 + 3

    def fn(coords: Coords) -> float:
        acc = float(salt)
        for j, c in enumerate(coords):
            acc += (j + 2) * c * 0.25 + (c * c) * 0.0625
        return acc

    return fn


def make_arrays(model: ReferenceModel,
                init: Optional[Callable[[str], Callable[[Coords], float]]] = None,
                ) -> dict[str, DataSpace]:
    """Allocate and initialize all arrays of a model."""
    init = init or default_init
    out: dict[str, DataSpace] = {}
    for name, (lo, hi) in array_footprints(model).items():
        out[name] = DataSpace(name, lo, hi).fill_with(init(name))
    return out
