"""Run a partition plan on a full simulated multicomputer.

Binds everything together: the host distributes each block's data
region onto its processor (charging the network with the real message
pattern -- scatter for private regions, multicast for shared ones,
broadcast for machine-wide ones), processors execute their blocks
functionally (strict local memories prove communication-freedom) while
compute time is charged per executed computation, and the result is
merged and checked.  One call yields both the *answer* and the
*simulated performance* of the paper's execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.plan import PartitionPlan
from repro.machine.cost import CostModel, TRANSPUTER
from repro.machine.machine import MachineStats, Multicomputer
from repro.machine.topology import HOST
from repro.mapping.grid import shape_grid
from repro.obs.trace import current_tracer
from repro.perf.general import block_to_pid_map, mesh_for
from repro.runtime.arrays import Coords, DataSpace, make_arrays
from repro.runtime.merge import merge_copies
from repro.runtime.parallel import ParallelResult, _run_parallel
from repro.runtime.seq import run_sequential
from repro.transform.loopnest import transform_nest


@dataclass
class MachineRun:
    """Functional result + simulated performance of one plan execution."""

    plan: PartitionPlan
    machine: Multicomputer
    result: ParallelResult
    merged: dict[str, DataSpace]
    stats: MachineStats
    exact: bool

    @property
    def makespan(self) -> float:
        return self.stats.makespan

    @property
    def communication_free(self) -> bool:
        return self.stats.remote_accesses == 0 and \
            self.result.remote_accesses == 0

    # -- the Summary protocol ---------------------------------------------
    @property
    def ok(self) -> bool:
        return self.exact and self.communication_free

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        return (f"machine run [{self.machine.num_processors} PEs]: {verdict} "
                f"-- makespan {self.makespan:.3f}, "
                f"{self.stats.messages} messages, "
                f"{self.stats.remote_accesses} remote accesses, "
                f"exact={self.exact}")

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "processors": self.machine.num_processors,
            "makespan": self.makespan,
            "messages": self.stats.messages,
            "remote_accesses": self.stats.remote_accesses,
            "exact": self.exact,
            "communication_free": self.communication_free,
            "run": self.result.to_json(),
        }


def _distribute(machine: Multicomputer, plan: PartitionPlan,
                mapping: dict[int, int],
                initial: dict[str, DataSpace]) -> None:
    """Charge the host-to-node distribution with grouped messages."""
    p = machine.num_processors
    net = machine.network
    for name, dblocks in plan.data_blocks.items():
        # destination-set grouping, as in the paper's L5 patterns
        owners: dict[Coords, set[int]] = {}
        for db in dblocks:
            pid = mapping[db.block_index]
            for e in db.elements:
                owners.setdefault(e, set()).add(pid)
        groups: dict[frozenset[int], int] = {}
        for e, pids in owners.items():
            key = frozenset(pids)
            groups[key] = groups.get(key, 0) + 1
        for dsts, words in sorted(groups.items(), key=lambda kv: sorted(kv[0])):
            if len(dsts) == p and p > 1:
                net.broadcast(HOST, words, tag=f"bcast:{name}")
            elif len(dsts) == 1:
                net.send(HOST, next(iter(dsts)), words, tag=f"scatter:{name}")
            else:
                net.multicast(HOST, sorted(dsts), words, tag=f"mcast:{name}")
    # the functional regions are populated by run_parallel; mark arrival
    for proc in machine.processors:
        proc.recv_time = net.elapsed


def run_on_machine(
    plan: PartitionPlan,
    p: int,
    cost: CostModel = TRANSPUTER,
    machine: Optional[Multicomputer] = None,
    initial: Optional[dict[str, DataSpace]] = None,
    scalars: Optional[Mapping[str, float]] = None,
    verify: bool = True,
    backend: Optional[str] = None,
    chaos: Optional[object] = None,
    options: Optional[object] = None,
) -> MachineRun:
    """Distribute, execute, merge and (optionally) verify on one machine.

    ``p`` shapes the processor grid through the paper's rule; blocks are
    assigned cyclically.  The returned stats combine the charged
    distribution time with the per-processor compute makespan.
    ``backend`` selects the execution engine for the functional run;
    ``chaos``/``options`` are forwarded to the parallel execution.
    """
    if options is not None:
        backend = backend or options.backend
        chaos = chaos if chaos is not None else options.chaos
    tracer = current_tracer()
    with tracer.span("machine.run", category="machine",
                     nest=plan.nest.name or "<anon>", p=p) as msp:
        tnest = transform_nest(plan.nest, plan.psi)
        grid = shape_grid(p, tnest.k)
        actual_p = max(1, grid.size)
        if machine is None:
            machine = Multicomputer(mesh_for(actual_p), cost=cost)
        elif machine.num_processors < actual_p:
            raise ValueError(
                f"machine has {machine.num_processors} processors but the "
                f"grid needs {actual_p}")
        mapping = block_to_pid_map(plan, tnest, grid)

        if initial is None:
            initial = make_arrays(plan.model)

        with tracer.span("machine.distribute", category="machine",
                         processors=machine.num_processors) as dsp:
            _distribute(machine, plan, mapping, initial)
            dsp.set(messages=machine.network.log.count,
                    words=machine.network.log.total_words,
                    elapsed=machine.network.elapsed)

        with tracer.span("machine.execute", category="machine",
                         blocks=len(plan.blocks)):
            result = _run_parallel(plan, initial=initial, scalars=scalars,
                                   block_to_pid=mapping, backend=backend,
                                   chaos=chaos)
        # charge compute: executed computations per processor, normalized
        # to the paper's "one iteration = one t_comp" unit
        nstmts = len(plan.nest.statements)
        executed: dict[int, int] = {}
        live = plan.live
        for b in plan.blocks:
            pid = mapping[b.index]
            if live is None:
                cnt = len(b.iterations) * nstmts
            else:
                cnt = sum(1 for it in b.iterations for k in range(nstmts)
                          if (k, it) in live)
            executed[pid] = executed.get(pid, 0) + cnt
        for pid, cnt in executed.items():
            machine.processor(pid).compute_time += cnt / nstmts * cost.t_comp
            machine.processor(pid).iterations += cnt // nstmts

        with tracer.span("machine.merge", category="machine"):
            merged = merge_copies(result, initial)
        exact = True
        if verify:
            with tracer.span("machine.verify", category="machine") as vsp:
                expected = {n: a.copy() for n, a in initial.items()}
                run_sequential(plan.nest, expected, scalars=scalars,
                               space=plan.model.space)
                exact = all(merged[n] == expected[n] for n in expected)
                vsp.set(exact=exact)

        stats = machine.stats()
        msp.set(makespan=stats.makespan,
                messages=stats.messages,
                remote_accesses=stats.remote_accesses)
        return MachineRun(plan=plan, machine=machine, result=result,
                          merged=merged, stats=stats, exact=exact)
