"""The parallel executor: run a partition plan on the simulated machine.

Steps (mirroring the paper's execution model):

1. **Placement** -- iteration blocks are assigned to processors (one
   logical processor per block by default, or any block->pid mapping,
   e.g. the cyclic assignment for a fixed-size machine).
2. **Allocation** -- each block's data blocks are allocated as that
   block's private region, initialized from the global initial arrays
   (the host distribution; communication costs are charged separately
   by the perf harness -- here we care about functional correctness).
   Regions stay per-block even when several blocks share a processor:
   under the duplicate strategy two co-resident blocks hold *separate
   copies* of a replicated element, exactly as the paper's per-block
   data blocks ``B_j^A`` prescribe.
3. **Execution** -- each block runs its iterations in lexicographic
   order, statements in textual order, *skipping redundant
   computations* when the plan eliminated them.  Block memories are
   strict: any access outside the block's data blocks raises
   :class:`~repro.machine.memory.RemoteAccessError`, so a completing
   run *proves* the plan communication-free.
4. **Timestamping** -- every write records its global sequential order,
   enabling the last-writer merge of replicated copies.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.core.plan import PartitionPlan
from repro.machine.memory import LocalMemory
from repro.obs.metrics import MetricsRegistry, current_registry
from repro.obs.trace import current_tracer
from repro.runtime.arrays import Coords, DataSpace, make_arrays

Element = tuple[str, Coords]


@dataclass
class ParallelResult:
    """Outcome of one parallel run.

    ``memories`` is keyed by *block index* (each block owns a private
    region); ``block_to_pid`` says which processor hosts each block.
    """

    plan: PartitionPlan
    memories: dict[int, LocalMemory]
    block_to_pid: dict[int, int]
    # (block, array, coords) -> sequential order of the last write there
    write_stamps: dict[tuple[int, str, Coords], int] = field(default_factory=dict)
    executed_iterations: int = 0
    skipped_computations: int = 0
    # canonical name of the engine that executed the blocks
    backend: str = "interp"
    # filled by the multiprocess engine's BlockScheduler (lease history,
    # retry/respawn counters); None on in-process backends
    scheduler: Optional[Any] = None
    # filled by the shared-memory block store: array -> (coords, stamps,
    # values) ndarray views of every written slot, so merge_copies can
    # merge vectorized without reconstructing per-element dicts; None
    # when the run used the by-value path
    merge_data: Optional[dict] = None

    @property
    def remote_accesses(self) -> int:
        return sum(m.remote_attempts for m in self.memories.values())

    @property
    def remote_reads(self) -> int:
        return sum(m.remote_read_attempts for m in self.memories.values())

    @property
    def remote_writes(self) -> int:
        return sum(m.remote_write_attempts for m in self.memories.values())

    def loads(self) -> dict[int, int]:
        """Executed iterations per *processor* (aggregating its blocks)."""
        counts: dict[int, int] = {}
        for b in self.plan.blocks:
            pid = self.block_to_pid[b.index]
            counts[pid] = counts.get(pid, 0) + len(b.iterations)
        return counts

    # -- the Summary protocol ---------------------------------------------
    @property
    def ok(self) -> bool:
        """Zero remote accesses (and, if scheduled, full recovery)."""
        if self.scheduler is not None and not self.scheduler.ok:
            return False
        return self.remote_accesses == 0

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        sched = (f"; {self.scheduler.retries} scheduler retries"
                 if self.scheduler is not None
                 and self.scheduler.retries else "")
        return (f"parallel run [{self.backend}]: {verdict} -- "
                f"{len(self.plan.blocks)} blocks, "
                f"{self.executed_iterations} iterations executed, "
                f"{self.skipped_computations} skipped, "
                f"{self.remote_accesses} remote accesses{sched}")

    def to_json(self) -> dict:
        data = {
            "ok": self.ok,
            "backend": self.backend,
            "blocks": len(self.plan.blocks),
            "executed_iterations": self.executed_iterations,
            "skipped_computations": self.skipped_computations,
            "remote_accesses": self.remote_accesses,
            "remote_reads": self.remote_reads,
            "remote_writes": self.remote_writes,
            "memory_words": sum(m.words() for m in self.memories.values()),
        }
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler.to_json()
        return data

    def memory_words_by_pid(self) -> dict[int, int]:
        """Total allocated words per processor (its blocks' regions)."""
        out: dict[int, int] = {}
        for blk, mem in self.memories.items():
            pid = self.block_to_pid[blk]
            out[pid] = out.get(pid, 0) + mem.words()
        return out

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish this run's counters to the unified metrics registry.

        Gauges (``runtime.remote_accesses``, ``runtime.blocks``,
        ``runtime.memory_words``) reflect *this* run exactly -- the
        exported ``runtime.remote_accesses`` equals
        :attr:`remote_accesses` -- while the ``runtime.*`` counters
        accumulate across runs within the registry's lifetime.
        """
        reg = registry if registry is not None else current_registry()
        reg.inc("runtime.runs")
        reg.inc(f"runtime.engine.runs.{self.backend}")
        reg.inc("runtime.executed_iterations.total",
                self.executed_iterations)
        reg.set("runtime.remote_accesses", self.remote_accesses)
        reg.set("runtime.remote_reads", self.remote_reads)
        reg.set("runtime.remote_writes", self.remote_writes)
        reg.set("runtime.executed_iterations", self.executed_iterations)
        reg.set("runtime.skipped_computations", self.skipped_computations)
        reg.set("runtime.blocks", len(self.plan.blocks))
        reg.set("runtime.memory_words",
                sum(m.words() for m in self.memories.values()))


def _run_parallel(
    plan: PartitionPlan,
    initial: Optional[dict[str, DataSpace]] = None,
    scalars: Optional[Mapping[str, float]] = None,
    block_to_pid: Optional[Mapping[int, int]] = None,
    strict: bool = True,
    backend: Optional[str] = None,
    chaos: Union[str, Any, None] = None,
    options: Optional[Any] = None,
) -> ParallelResult:
    """Execute the plan; see module docstring.

    ``block_to_pid`` defaults to the identity (one processor per
    block).  ``initial`` defaults to the standard deterministic init.
    ``backend`` picks the execution engine (default: the interpreter,
    or ``$REPRO_BACKEND``); non-strict runs always use the
    interpreter, the only tier modeling tolerated remote accesses.
    ``chaos`` scopes a :class:`~repro.runtime.scheduler.FaultPlan` (or
    spec string) over the run; ``options`` is a
    :class:`repro.api.RunOptions` supplying defaults for both.
    """
    # local import: backends call back into this module's types
    from repro.runtime.engine import resolve_engine
    from repro.runtime.scheduler import use_fault_plan

    if options is not None:
        backend = backend or options.backend
        chaos = chaos if chaos is not None else options.chaos

    scalars = scalars or {}
    model = plan.model
    if initial is None:
        initial = make_arrays(model)
    if block_to_pid is None:
        mapping = {b.index: b.index for b in plan.blocks}
    else:
        mapping = {b.index: block_to_pid[b.index] for b in plan.blocks}

    tracer = current_tracer()

    # -- allocation: one private region per block -------------------------
    memories: dict[int, LocalMemory] = {}
    with tracer.span("runtime.allocate", category="engine",
                     blocks=len(plan.blocks)) as sp:
        for b in plan.blocks:
            mem = LocalMemory(pid=mapping[b.index], strict=strict)
            for name, dblocks in plan.data_blocks.items():
                elems = dblocks[b.index].elements
                src = initial[name]
                mem.allocate(name, elems, init=lambda c, s=src: s[c])
            memories[b.index] = mem
        sp.set(words=sum(m.words() for m in memories.values()))

    engine = resolve_engine("interp" if not strict else backend)
    result = ParallelResult(plan=plan, memories=memories, block_to_pid=mapping,
                            backend=engine.name)

    # -- execution (write stamps record the global sequential order of
    # each computation, rank_of(it) * nstmts + k, for the merge) ----------
    # an explicit chaos plan is scoped over the engine run; chaos=None
    # leaves any ambient plan (outer use_fault_plan scope, $REPRO_CHAOS)
    # in force
    from repro.obs.flight import flight

    chaos_scope = nullcontext() if chaos is None else use_fault_plan(chaos)
    try:
        with chaos_scope, flight().span(
                "engine.run_blocks", backend=engine.name,
                blocks=len(plan.blocks)), tracer.span(
                "engine.run_blocks", category="engine",
                backend=engine.name,
                blocks=len(plan.blocks),
                statements=len(plan.nest.statements)) as sp:
            engine.run_blocks(plan, memories, result, initial, scalars,
                              strict=strict)
            sp.set(executed_iterations=result.executed_iterations,
                   skipped_computations=result.skipped_computations,
                   remote_accesses=result.remote_accesses)
    finally:
        result.publish()
    return result


def run_parallel(*args, **kwargs) -> ParallelResult:
    """Deprecated free-function entry point.

    Thin shim over the real implementation, kept for source
    compatibility; new code should drive execution through
    :class:`repro.api.Session` (``Session(nest).run()``), which scopes
    observability and the persistent worker pool correctly.  See
    ``docs/API.md`` for the migration map.
    """
    import warnings

    warnings.warn(
        "run_parallel() is deprecated; use repro.api.Session(...).run() "
        "(see docs/API.md)", DeprecationWarning, stacklevel=2)
    return _run_parallel(*args, **kwargs)
