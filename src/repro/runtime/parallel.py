"""The parallel executor: run a partition plan on the simulated machine.

Steps (mirroring the paper's execution model):

1. **Placement** -- iteration blocks are assigned to processors (one
   logical processor per block by default, or any block->pid mapping,
   e.g. the cyclic assignment for a fixed-size machine).
2. **Allocation** -- each block's data blocks are allocated as that
   block's private region, initialized from the global initial arrays
   (the host distribution; communication costs are charged separately
   by the perf harness -- here we care about functional correctness).
   Regions stay per-block even when several blocks share a processor:
   under the duplicate strategy two co-resident blocks hold *separate
   copies* of a replicated element, exactly as the paper's per-block
   data blocks ``B_j^A`` prescribe.
3. **Execution** -- each block runs its iterations in lexicographic
   order, statements in textual order, *skipping redundant
   computations* when the plan eliminated them.  Block memories are
   strict: any access outside the block's data blocks raises
   :class:`~repro.machine.memory.RemoteAccessError`, so a completing
   run *proves* the plan communication-free.
4. **Timestamping** -- every write records its global sequential order,
   enabling the last-writer merge of replicated copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.plan import PartitionPlan
from repro.machine.memory import LocalMemory
from repro.runtime.arrays import Coords, DataSpace, make_arrays
from repro.runtime.seq import eval_expr, subscript_coords

Element = tuple[str, Coords]


@dataclass
class ParallelResult:
    """Outcome of one parallel run.

    ``memories`` is keyed by *block index* (each block owns a private
    region); ``block_to_pid`` says which processor hosts each block.
    """

    plan: PartitionPlan
    memories: dict[int, LocalMemory]
    block_to_pid: dict[int, int]
    # (block, array, coords) -> sequential order of the last write there
    write_stamps: dict[tuple[int, str, Coords], int] = field(default_factory=dict)
    executed_iterations: int = 0
    skipped_computations: int = 0

    @property
    def remote_accesses(self) -> int:
        return sum(m.remote_attempts for m in self.memories.values())

    def loads(self) -> dict[int, int]:
        """Executed iterations per *processor* (aggregating its blocks)."""
        counts: dict[int, int] = {}
        for b in self.plan.blocks:
            pid = self.block_to_pid[b.index]
            counts[pid] = counts.get(pid, 0) + len(b.iterations)
        return counts

    def memory_words_by_pid(self) -> dict[int, int]:
        """Total allocated words per processor (its blocks' regions)."""
        out: dict[int, int] = {}
        for blk, mem in self.memories.items():
            pid = self.block_to_pid[blk]
            out[pid] = out.get(pid, 0) + mem.words()
        return out


def run_parallel(
    plan: PartitionPlan,
    initial: Optional[dict[str, DataSpace]] = None,
    scalars: Optional[Mapping[str, float]] = None,
    block_to_pid: Optional[Mapping[int, int]] = None,
    strict: bool = True,
) -> ParallelResult:
    """Execute the plan; see module docstring.

    ``block_to_pid`` defaults to the identity (one processor per
    block).  ``initial`` defaults to the standard deterministic init.
    """
    scalars = scalars or {}
    model = plan.model
    nest = plan.nest
    if initial is None:
        initial = make_arrays(model)
    if block_to_pid is None:
        mapping = {b.index: b.index for b in plan.blocks}
    else:
        mapping = {b.index: block_to_pid[b.index] for b in plan.blocks}

    # -- allocation: one private region per block -------------------------
    memories: dict[int, LocalMemory] = {}
    for b in plan.blocks:
        mem = LocalMemory(pid=mapping[b.index], strict=strict)
        for name, dblocks in plan.data_blocks.items():
            elems = dblocks[b.index].elements
            src = initial[name]
            mem.allocate(name, elems, init=lambda c, s=src: s[c])
        memories[b.index] = mem

    result = ParallelResult(plan=plan, memories=memories, block_to_pid=mapping)

    # -- global sequential order of computations (for merge stamps) --------
    seq_of: dict[tuple[int, Coords], int] = {}
    order = 0
    nstmts = len(nest.statements)
    for it in model.space.iterate():
        for k in range(nstmts):
            seq_of[(k, it)] = order
            order += 1

    # -- execution -----------------------------------------------------------
    for b in plan.blocks:
        mem = memories[b.index]

        def read(a: str, c: Coords) -> float:
            return mem.load(a, c)

        for it in b.iterations:
            env = dict(zip(nest.indices, it))
            executed_any = False
            for k, stmt in enumerate(nest.statements):
                if not plan.executes(k, it):
                    result.skipped_computations += 1
                    continue
                value = eval_expr(stmt.rhs, env, scalars, read)
                coords = subscript_coords(stmt.lhs, env)
                mem.store(stmt.lhs.array, coords, value)
                result.write_stamps[(b.index, stmt.lhs.array, coords)] = \
                    seq_of[(k, it)]
                executed_any = True
            if executed_any:
                result.executed_iterations += 1
    return result
