"""The worker-side lease runner for the shared-memory store.

``run_store_lease`` is the pool entry point of the by-descriptor path:
the payload carries segment *names* and block *indices* -- no plan, no
memories.  Everything heavy is cached per worker process and keyed by
segment name, so a persistent pool amortizes it across every lease and
every run of a session, while a respawned worker (chaos) simply
re-attaches to the store by name on its first lease:

- the plan: attached, unpickled and cached once per plan segment;
- the run context: seed/values/stamps views over the attached segments
  plus the control blob's block -> pid map, cached per run (bounded;
  evicted contexts detach their segments);
- the per-block tables (coords -> block-local slot maps plus the
  block's region spans), derived from the shared canonical layout;
- the store kernel itself (its own compile cache).

Each block attempt computes in a *worker-private* copy of the block's
regions, seeded from the read-only seed buffer, and publishes final
values/stamps into the shared buffers only at the end.  That keeps
retries idempotent even for read-modify-write nests (matmul's ``C``
accumulation): a partial attempt never leaks intermediate accumulator
state into what the retry reads, and duplicate concurrent attempts
publish identical bytes per slot (same seed, same deterministic
kernel), so shared writes stay race-free by value-identity.

Observability mirrors the by-value worker exactly: a fresh scoped
tracer/registry per lease, ``engine.block`` spans per block,
``engine.worker.chunks`` / ``blocks`` / ``executed_iterations``
counters, plus ``engine.shm.attaches`` when this process first attaches
a run -- all shipped home as a
:class:`~repro.obs.aggregate.WorkerObs` and re-homed under the parent's
``scheduler.run`` span.  Injected faults keep their by-value semantics:
SLOW sleeps, CRASH does the work then kills the process (its published
*finals* survive in the store -- harmless, because the retry republishes
the same slots with the same values, the idempotence Theorems 1-4
guarantee), DROP returns the loss marker.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict

from repro.machine.memory import RemoteAccessError
from repro.runtime import numpy_compat as npc
from repro.runtime.blockstore.kernel import compile_store_kernel
from repro.runtime.blockstore.layout import layout_for
from repro.runtime.blockstore.store import (
    StoreDescriptor,
    attach_segment,
    read_blob,
)

_MAX_CACHED = 4

#: plan segment name -> unpickled plan
_PLANS: "OrderedDict[str, object]" = OrderedDict()
#: control segment name -> run context dict
_RUNS: "OrderedDict[str, dict]" = OrderedDict()
#: (plan segment name, block) -> (coords -> local slot per array,
#: (global off, local off, count) region spans, local words)
_TABLES: dict[tuple[str, int], tuple] = {}
#: (plan segment name, block) -> codegen store-kernel rect args
_RECTS: dict[tuple[str, int], tuple] = {}


def _plan_for(name: str):
    import pickle

    plan = _PLANS.get(name)
    if plan is None:
        seg = attach_segment(name)
        try:
            plan = pickle.loads(read_blob(seg))
        finally:
            seg.close()
        while len(_PLANS) >= _MAX_CACHED:
            stale, _ = _PLANS.popitem(last=False)
            for key in [k for k in _TABLES if k[0] == stale]:
                del _TABLES[key]
            for key in [k for k in _RECTS if k[0] == stale]:
                del _RECTS[key]
        _PLANS[name] = plan
    return plan


def _evict_run(ctx: dict) -> None:
    ctx["seed"] = ctx["values"] = ctx["stamps"] = None
    for seg in ctx.pop("segs", ()):
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass


def _run_ctx(desc: StoreDescriptor) -> dict:
    import pickle

    from repro.obs.metrics import current_registry

    ctx = _RUNS.get(desc.control_segment)
    if ctx is not None:
        return ctx
    np = npc.np
    plan = _plan_for(desc.plan_segment)
    dseg = attach_segment(desc.seed_segment)
    vseg = attach_segment(desc.values_segment)
    sseg = attach_segment(desc.stamps_segment)
    cseg = attach_segment(desc.control_segment)
    try:
        pid_by_block = pickle.loads(read_blob(cseg))
    finally:
        cseg.close()
    space = plan.model.space
    ctx = {
        "plan": plan,
        "plan_segment": desc.plan_segment,
        "seed": np.frombuffer(dseg.buf, dtype=np.float64,
                              count=desc.words),
        "values": np.frombuffer(vseg.buf, dtype=np.float64,
                                count=desc.words),
        "stamps": np.frombuffer(sseg.buf, dtype=np.int64, count=desc.words),
        "segs": (dseg, vseg, sseg),
        "pid_by_block": pid_by_block,
        "blocks_by_index": {b.index: b for b in plan.blocks},
        "space": space,
        "rank_rect": space.rank_strides(),
        "nreads": [len(list(s.rhs.array_refs()))
                   for s in plan.nest.statements],
    }
    while len(_RUNS) >= _MAX_CACHED:
        _, stale = _RUNS.popitem(last=False)
        _evict_run(stale)
    _RUNS[desc.control_segment] = ctx
    current_registry().inc("engine.shm.attaches")
    return ctx


def _block_tables(ctx: dict, bindex: int) -> tuple:
    """The block's local slot maps and region spans (cached).

    Slots are rebased to *block-local* offsets so an attempt can run
    against a private buffer holding just this block's regions; the
    spans say where each region lives in the shared buffers.
    """
    key = (ctx["plan_segment"], bindex)
    hit = _TABLES.get(key)
    if hit is None:
        layout = layout_for(ctx["plan"])
        idx: dict[str, dict] = {}
        regions = []
        loff = 0
        for name in layout.arrays:
            goff, cnt = layout.regions[(name, bindex)]
            idx[name] = {c: s - goff + loff
                         for c, s in layout.slots(name, bindex).items()}
            if cnt:
                regions.append((goff, loff, cnt))
            loff += cnt
        hit = (idx, tuple(regions), loff)
        _TABLES[key] = hit
    return hit


def _run_block(ctx: dict, b, scalars, kernel, live, out) -> None:
    """One block through the store kernel (stats onto ``out``)."""
    from repro.obs.trace import current_tracer
    from repro.runtime.seq import eval_expr, subscript_coords

    np = npc.np
    plan = ctx["plan"]
    nest = plan.nest
    seed = ctx["seed"]
    pid = ctx["pid_by_block"][b.index]
    idx, regions, nwords = _block_tables(ctx, b.index)
    # a private copy of the block's regions: attempts must not read
    # (or leak) another attempt's intermediate accumulator state
    values = np.empty(nwords, dtype=np.float64)
    stamps = np.full(nwords, -1, dtype=np.int64)
    for goff, loff, cnt in regions:
        values[loff:loff + cnt] = seed[goff:goff + cnt]

    def remote(k, it):
        # slow path: one statement in the interpreter's exact evaluation
        # order, raising the same RemoteAccessError it would raise first
        stmt = nest.statements[k]
        env = dict(zip(nest.indices, it))

        def load(a, c):
            slot = idx[a].get(c)
            if slot is None:
                raise RemoteAccessError(pid, a, c, is_write=False)
            return float(values[slot])

        value = eval_expr(stmt.rhs, env, scalars, load)
        c = subscript_coords(stmt.lhs, env)
        slot = idx[stmt.lhs.array].get(c)
        if slot is None:
            raise RemoteAccessError(pid, stmt.lhs.array, c, is_write=True)
        values[slot] = value
        raise AssertionError(
            "store kernel raised KeyError but the interpreter slow path "
            "found every element local")  # pragma: no cover

    with current_tracer().span("engine.block", category="engine",
                               backend="shm", block=b.index,
                               iterations=len(b.iterations)) as sp:
        executed, counts = kernel(b.index, b.iterations, idx, values,
                                  stamps, live, ctx["space"].rank_of, remote)
        # publish finals: only written slots, values before stamps, so a
        # stamp >= 0 in the shared buffer always covers a final value
        for goff, loff, cnt in regions:
            ls = stamps[loff:loff + cnt]
            hit = ls >= 0
            if hit.any():
                ctx["values"][goff:goff + cnt][hit] = \
                    values[loff:loff + cnt][hit]
                ctx["stamps"][goff:goff + cnt][hit] = ls[hit]
        out.executed_iterations += executed
        reads = writes = 0
        for k, n in enumerate(counts):
            writes += n
            reads += n * ctx["nreads"][k]
            if live is not None:
                out.skipped_computations += len(b.iterations) - n
        out.counts[b.index] = (reads, writes)
        sp.set(statements=sum(counts))


def _codegen_kernel(ctx: dict, key: str, scalars):
    """The codegen store kernel for ``key``, adapted to the dict-kernel
    signature, or None (any failure falls back to the generic kernel).

    A warm worker serves it from its in-process cache; a fresh worker
    unmarshals the parent's persisted code object from the shared
    on-disk cache -- zero emit/compile work either way.  The parent only
    set the key after the communication audit certified zero cross-block
    accesses, so the specialized kernel's elided ownership checks are
    sound and the ``idx``/``remote`` machinery goes unused.
    """
    from repro.obs.metrics import current_registry

    try:
        from repro.runtime.engine.codegen.storegen import (
            attach_store_kernel,
            block_rect_args,
        )

        raw = attach_store_kernel(key, ctx["plan"], scalars)
    except Exception:  # pragma: no cover - any failure -> dict kernel
        current_registry().inc("engine.codegen.store.attach-failed")
        return None
    current_registry().inc("engine.codegen.store_kernels")
    layout = layout_for(ctx["plan"])
    nest = ctx["plan"].nest
    seg = ctx["plan_segment"]

    def kernel(bindex, iters, idx, values, stamps, live, rank_of, remote):
        rkey = (seg, bindex)
        rect = _RECTS.get(rkey)
        if rect is None:
            rect = block_rect_args(layout, nest, bindex)
            _RECTS[rkey] = rect
        return raw(bindex, iters, rect, values, stamps, live, rank_of)

    return kernel


def run_store_lease(payload):
    """Pool entry point: one lease = one unit of block indices against
    the store descriptor.  Mirrors the by-value ``_run_lease`` fault
    and observability semantics exactly."""
    (uid, attempt, desc, block_indices, scalars, trace_enabled, fault,
     slow_s, block_slow_s, slow_blocks) = payload
    from repro.obs.aggregate import capture_worker_obs
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.trace import Tracer, use_tracer
    from repro.runtime.scheduler.core import _DROPPED, _UnitOutcome
    from repro.runtime.scheduler.faults import CRASH, DROP, SLOW

    if fault == SLOW and slow_s > 0:
        time.sleep(slow_s)
    tracer = Tracer(enabled=trace_enabled)
    registry = MetricsRegistry()
    out = _UnitOutcome()
    with use_tracer(tracer), use_registry(registry):
        registry.inc("engine.worker.chunks")
        registry.inc("engine.worker.blocks", len(block_indices))
        ctx = _run_ctx(desc)
        live = ctx["plan"].live
        kernel = None
        if desc.codegen_key:
            kernel = _codegen_kernel(ctx, desc.codegen_key, scalars)
        if kernel is None:
            kernel = compile_store_kernel(ctx["plan"].nest, scalars,
                                          live is not None,
                                          ctx["rank_rect"])
        try:
            for bindex in block_indices:
                if bindex in slow_blocks and block_slow_s > 0:
                    time.sleep(block_slow_s)
                _run_block(ctx, ctx["blocks_by_index"][bindex], scalars,
                           kernel, live, out)
        except RemoteAccessError as exc:
            out.remote = (exc.pid, exc.array, exc.coords, exc.is_write)
        registry.inc("engine.worker.executed_iterations",
                     out.executed_iterations)
    out.obs = capture_worker_obs(tracer, registry)
    if fault == CRASH:
        os._exit(3)
    if fault == DROP:
        return (uid, attempt, _DROPPED)
    return (uid, attempt, out)
