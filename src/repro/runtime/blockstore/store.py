"""The parent-side shared-memory block store.

One run allocates four segments (sized by the plan's
:class:`~repro.runtime.blockstore.layout.StoreLayout`):

- a ``float64`` **seed** buffer holding every (array, block) region's
  *initial* values, copied once from the run's freshly allocated local
  memories and read-only thereafter;
- a ``float64`` **values** buffer that workers *publish* finished
  results into;
- a parallel ``int64`` **write-stamp** buffer, reset to ``-1`` (the
  scatter-back mask: a slot whose stamp is ``>= 0`` was written);
- a small pickled **control** blob (the block -> pid map workers need
  for :class:`~repro.machine.memory.RemoteAccessError` parity).

The seed/values split is what keeps chaos recovery bit-identical:
every lease attempt computes in a worker-private copy of its block's
regions (seeded from the read-only seed buffer) and only *publishes*
final values and stamps at the end.  A crashed, dropped or expired
attempt therefore never taints the state the retry starts from -- the
retry re-derives the identical finals from the identical seed -- and
even two *concurrent* attempts at the same block (a late lease racing
its replacement) publish identical bytes per slot, so the writes are
race-free by value-identity, the same argument Theorems 1-4 make for
disjoint-write blocks.

The *plan* travels separately: it is pickled once per plan object into
its own segment (``plan_segment``), registered in a parent-side
registry keyed by plan identity and unlinked by a ``weakref.finalize``
when the plan dies (plus an ``atexit`` sweep, so no run can leak a
``/dev/shm`` entry past process exit).  Workers unpickle it once per
process and cache it, which is what turns the old 2 MB-per-lease plan
pickle into a one-time cost.

Lifecycle: the engine creates the store, the scheduler leases block
indices against its descriptor, :meth:`SharedBlockStore.collect`
reconstructs write stamps / memory values / merge views from the stamp
grid, and the engine unlinks the run segments in a ``finally`` -- on
success, degradation *and* abort alike.  Workers attach by name and
deregister from the resource tracker (attaching registers the segment
for unlink-at-exit on Python < 3.13, which would tear the store down
under the parent and every sibling worker the moment one worker
exits).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import weakref
from dataclasses import dataclass, replace
from typing import Optional

from repro.runtime import numpy_compat as npc
from repro.runtime.blockstore.layout import layout_for

#: Set to force the by-value lease path even when shared memory works.
NO_SHM_ENV_VAR = "REPRO_NO_SHM"

#: Prefix of every segment this process creates -- the chaos smoke test
#: greps ``/dev/shm`` for it to assert leak-free unlinking.
SEGMENT_PREFIX = "repro-"

_SEQ = itertools.count()


def shm_available() -> bool:
    """Can (and should) runs use the shared-memory store?

    Requires numpy (the store is built on flat ndarray views; the
    PyGrid fallback uses the by-value copy-through path) and the
    ``multiprocessing.shared_memory`` module, and honors
    ``REPRO_NO_SHM=1``.  Re-checked per run so tests can flip either.
    """
    if os.environ.get(NO_SHM_ENV_VAR):
        return False
    if npc.np is None:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except Exception:  # pragma: no cover - platform without shm
        return False
    return True


def _create_segment(kind: str, nbytes: int):
    from multiprocessing import shared_memory

    name = f"{SEGMENT_PREFIX}{kind}-{os.getpid()}-{next(_SEQ)}"
    return shared_memory.SharedMemory(name=name, create=True,
                                      size=max(1, nbytes))


def attach_segment(name: str):
    """Attach an existing segment by name (worker side).

    Attaching must *not* register the segment with the resource
    tracker: the parent owns the segment's lifecycle, tracker-driven
    unlink on worker exit would destroy it under everyone else, and
    (under fork, where the tracker process is shared) an
    unregister-after-attach would strip the parent's own registration
    instead.  Python < 3.13 has no ``track=`` parameter, so
    registration is suppressed around the attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def _write_blob(kind: str, blob: bytes):
    """A new segment holding ``len || blob`` (segments round up to page
    size, so the length prefix is what delimits the payload)."""
    seg = _create_segment(kind, 8 + len(blob))
    seg.buf[:8] = len(blob).to_bytes(8, "little")
    seg.buf[8:8 + len(blob)] = blob
    return seg


def read_blob(seg) -> bytes:
    n = int.from_bytes(bytes(seg.buf[:8]), "little")
    return bytes(seg.buf[8:8 + n])


def _close_segment(seg, unlink: bool) -> None:
    try:
        seg.close()
    except BufferError:  # pragma: no cover - a live view kept the map
        pass
    if unlink:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# ---------------------------------------------------------------------------
# the per-plan pickled plan segment
# ---------------------------------------------------------------------------

#: id(plan) -> (weakref, segment); guarded by the weakref against id reuse.
_PLAN_SEGMENTS: dict[int, tuple] = {}


def plan_segment(plan) -> str:
    """The (cached) name of the segment holding ``plan``, pickled.

    ``_block_of`` (the iteration -> block reverse index, by far the
    heaviest part of a plan pickle) is stripped: workers never call
    ``plan.block_of``.
    """
    key = id(plan)
    hit = _PLAN_SEGMENTS.get(key)
    if hit is not None and hit[0]() is plan:
        return hit[1].name
    slim = replace(plan, _block_of={})
    seg = _write_blob("plan", pickle.dumps(slim,
                                           protocol=pickle.HIGHEST_PROTOCOL))
    _PLAN_SEGMENTS[key] = (weakref.ref(plan), seg)
    weakref.finalize(plan, _release_plan_key, key)
    return seg.name


def _release_plan_key(key: int) -> None:
    hit = _PLAN_SEGMENTS.pop(key, None)
    if hit is not None:
        _close_segment(hit[1], unlink=True)


def release_plan_segment(plan) -> None:
    """Unlink ``plan``'s segment now (Session.close); idempotent."""
    _release_plan_key(id(plan))


@atexit.register
def _release_all_plan_segments() -> None:  # pragma: no cover - exit path
    for key in list(_PLAN_SEGMENTS):
        _release_plan_key(key)


# ---------------------------------------------------------------------------
# the run store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StoreDescriptor:
    """Everything a worker needs to attach: names, not data.

    This is the whole lease payload the by-descriptor path ships in
    place of the plan and the pickled memories -- a few short strings.
    """

    plan_segment: str
    seed_segment: str
    values_segment: str
    stamps_segment: str
    control_segment: str
    words: int
    #: codegen store-kernel cache key, set only when the parent emitted
    #: a specialized kernel (rect regions + audit certificate); workers
    #: attach it from the shared on-disk cache and fall back to the
    #: generic dict kernel when absent
    codegen_key: Optional[str] = None


class SharedBlockStore:
    """Shared-memory block regions for one multiprocess run."""

    def __init__(self, plan, memories: dict) -> None:
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        np = npc.np
        if np is None:  # pragma: no cover - guarded by shm_available()
            raise RuntimeError("SharedBlockStore requires numpy")
        self.plan = plan
        self.layout = layout_for(plan)
        self.codegen_key: Optional[str] = None
        total = self.layout.total_words
        tracer = current_tracer()
        with tracer.span("blockstore.create", category="engine",
                         words=total, blocks=len(plan.blocks)):
            self._plan_name = plan_segment(plan)
            self._dseg = _create_segment("seed", total * 8)
            self._vseg = _create_segment("val", total * 8)
            self._sseg = _create_segment("stp", total * 8)
            self.seed = np.frombuffer(self._dseg.buf, dtype=np.float64,
                                      count=total)
            self.values = np.frombuffer(self._vseg.buf, dtype=np.float64,
                                        count=total)
            self.stamps = np.frombuffer(self._sseg.buf, dtype=np.int64,
                                        count=total)
            self.stamps[:] = -1
            self._write_seed(memories)
            pid_by_block = {b: mem.pid for b, mem in memories.items()}
            self._cseg = _write_blob(
                "ctl", pickle.dumps(pid_by_block,
                                    protocol=pickle.HIGHEST_PROTOCOL))
        reg = current_registry()
        reg.inc("engine.shm.stores")
        reg.set("engine.shm.bytes",
                self._dseg.size + self._vseg.size + self._sseg.size
                + self._cseg.size)
        from repro.obs.flight import flight

        flight().record("event", "blockstore.create", words=total,
                        blocks=len(plan.blocks),
                        bytes=int(reg.value("engine.shm.bytes")))

    def _write_seed(self, memories: dict) -> None:
        """Copy every region's initial values in canonical order."""
        np = npc.np
        for (name, bindex), (off, cnt) in self.layout.regions.items():
            if not cnt:
                continue
            vals = memories[bindex].values[name]
            order = self.layout.order[(name, bindex)]
            self.seed[off:off + cnt] = np.fromiter(
                (vals[c] for c in order), dtype=np.float64, count=cnt)

    def descriptor(self) -> StoreDescriptor:
        return StoreDescriptor(
            plan_segment=self._plan_name,
            seed_segment=self._dseg.name,
            values_segment=self._vseg.name,
            stamps_segment=self._sseg.name,
            control_segment=self._cseg.name,
            words=self.layout.total_words,
            codegen_key=self.codegen_key)

    def collect(self, result, memories: dict) -> None:
        """Reconstruct results from the stamp grid.

        Rebuilds ``result.write_stamps`` and scatters written values
        back into the per-block ``LocalMemory`` dicts (bit-identical to
        the by-value path: a slot is written iff its stamp is >= 0),
        and stashes per-array merge views (coords / stamps / values
        copies) on the result so :func:`repro.runtime.merge.merge_copies`
        can merge vectorized, without reconstructing arrays.
        """
        from repro.obs.flight import flight
        from repro.obs.trace import current_tracer

        np = npc.np
        write_stamps = result.write_stamps
        merge_data: dict[str, tuple] = {}
        with flight().span("blockstore.collect",
                           words=self.layout.total_words), \
                current_tracer().span("blockstore.collect", category="engine",
                                      words=self.layout.total_words) as sp:
            written_slots = 0
            for name in self.layout.arrays:
                if name not in self.layout.written:
                    continue
                coords_acc: list = []
                stamps_acc: list = []
                values_acc: list = []
                for (aname, bindex), (off, cnt) in self.layout.regions.items():
                    if aname != name or not cnt:
                        continue
                    region_stamps = self.stamps[off:off + cnt]
                    hits = np.nonzero(region_stamps >= 0)[0]
                    if not len(hits):
                        continue
                    order = self.layout.order[(name, bindex)]
                    mem_vals = memories[bindex].values[name]
                    for i in hits.tolist():
                        c = order[i]
                        v = float(self.values[off + i])
                        mem_vals[c] = v
                        write_stamps[(bindex, name, c)] = \
                            int(region_stamps[i])
                        coords_acc.append(c)
                        stamps_acc.append(int(region_stamps[i]))
                        values_acc.append(v)
                if coords_acc:
                    written_slots += len(coords_acc)
                    merge_data[name] = (
                        np.array(coords_acc, dtype=np.int64),
                        np.array(stamps_acc, dtype=np.int64),
                        np.array(values_acc, dtype=np.float64))
            sp.set(written=written_slots)
        result.merge_data = merge_data

    def close(self, unlink: bool = True) -> None:
        """Release the run segments (idempotent).  The plan segment is
        registry-owned and survives for the next run on the same plan."""
        from repro.obs.metrics import current_registry

        segs = [s for s in (getattr(self, "_dseg", None),
                            getattr(self, "_vseg", None),
                            getattr(self, "_sseg", None),
                            getattr(self, "_cseg", None)) if s is not None]
        self.seed = None
        self.values = None
        self.stamps = None
        self._dseg = self._vseg = self._sseg = self._cseg = None
        for seg in segs:
            _close_segment(seg, unlink=unlink)
        if segs and unlink:
            current_registry().inc("engine.shm.unlinks")
