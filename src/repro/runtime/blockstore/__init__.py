"""Zero-copy block storage for the multiprocess engine.

The paper's theorems make iteration blocks touch *disjoint* written
data, so workers need no coordination at all -- and therefore no data
motion either: instead of pickling every block's local memory to a
worker and back (the old by-value lease), the parent lays all block
regions out in ``multiprocessing.shared_memory`` segments once and
leases blocks **by descriptor** (segment names + per-block offsets).
Workers attach by name, execute straight into numpy views, and the
parent reconstructs results from the shared write-stamp grid.

- :mod:`.layout` -- the canonical array-major segment layout, one
  ``(offset, count)`` region per (array, block) in sorted element
  order;
- :mod:`.store`  -- the parent-side :class:`SharedBlockStore`: segment
  creation, seeding, result collection, leak-proof unlink, and the
  per-plan pickled plan segment workers attach once per process;
- :mod:`.kernel` -- the statement-specialized store kernel (the
  compiled tier's codegen retargeted at flat shared views);
- :mod:`.worker` -- the worker-side lease runner with its attach /
  plan / index caches (a respawned worker re-attaches by name).

When shared memory is unavailable (``REPRO_NO_SHM=1``, no numpy, or a
platform without ``shared_memory``) the scheduler falls back to the
by-value lease path, which is the copy-through store that keeps
``REPRO_NO_NUMPY`` and the PyGrid backend fully working.
"""

from repro.runtime.blockstore.layout import StoreLayout, layout_for
from repro.runtime.blockstore.store import (
    NO_SHM_ENV_VAR,
    SharedBlockStore,
    StoreDescriptor,
    release_plan_segment,
    shm_available,
)

__all__ = [
    "NO_SHM_ENV_VAR",
    "SharedBlockStore",
    "StoreDescriptor",
    "StoreLayout",
    "layout_for",
    "release_plan_segment",
    "shm_available",
]
