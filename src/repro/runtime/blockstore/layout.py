"""The canonical segment layout: one flat region per (array, block).

Every (array, block) data block gets a contiguous ``(offset, count)``
region in one flat ``float64`` values buffer (and a parallel ``int64``
write-stamp buffer), laid out array-major in sorted array-name order,
block-index order within an array, and **sorted element order** within
a region.  Sorting matters: ``DataBlock.elements`` is a frozenset, and
frozenset iteration order is not stable across processes (hash
randomization), so the parent and every worker must derive the very
same coords->slot mapping independently -- sorted coordinate tuples are
the canonical order both sides agree on.

Duplicate-data plans replicate elements across blocks; each replica
gets its *own* slot (regions are per block, exactly like the per-block
``LocalMemory`` copies of the by-value path), so concurrent workers
never share a written slot -- Theorems 1-4 guarantee each block writes
only its own data blocks, which is what makes the shared buffer
race-free without locks.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

Coords = tuple[int, ...]
RegionKey = tuple[str, int]  # (array name, block index)


@dataclass(frozen=True)
class StoreLayout:
    """Where every block's every element lives in the flat buffers."""

    #: all array names, sorted (the region-major order)
    arrays: tuple[str, ...]
    #: arrays written by at least one statement (the only ones whose
    #: stamps/values need collecting)
    written: frozenset[str]
    #: (array, block) -> (offset, count) into the flat buffers
    regions: dict[RegionKey, tuple[int, int]] = field(repr=False)
    #: (array, block) -> canonical (sorted) element coordinate order
    order: dict[RegionKey, tuple[Coords, ...]] = field(repr=False)
    #: total float64 slots across all regions
    total_words: int = 0

    def slots(self, array: str, block: int) -> dict[Coords, int]:
        """The coords -> absolute-slot map of one region."""
        off, cnt = self.regions[(array, block)]
        return dict(zip(self.order[(array, block)], range(off, off + cnt)))


def build_layout(plan) -> StoreLayout:
    """Compute the layout of a plan (deterministic across processes)."""
    written = frozenset(s.lhs.array for s in plan.nest.statements)
    regions: dict[RegionKey, tuple[int, int]] = {}
    order: dict[RegionKey, tuple[Coords, ...]] = {}
    off = 0
    for name in sorted(plan.data_blocks):
        for db in plan.data_blocks[name]:
            elems = tuple(sorted(db.elements))
            key = (name, db.block_index)
            order[key] = elems
            regions[key] = (off, len(elems))
            off += len(elems)
    return StoreLayout(arrays=tuple(sorted(plan.data_blocks)),
                       written=written, regions=regions, order=order,
                       total_words=off)


#: id(plan) -> (weakref to the plan, its layout); the weakref guards
#: against id() reuse after a plan is garbage collected.
_LAYOUT_CACHE: dict[int, tuple] = {}


def layout_for(plan) -> StoreLayout:
    """The (cached) layout of ``plan``."""
    key = id(plan)
    hit = _LAYOUT_CACHE.get(key)
    if hit is not None and hit[0]() is plan:
        return hit[1]
    layout = build_layout(plan)
    try:
        ref = weakref.ref(plan)
        weakref.finalize(plan, _LAYOUT_CACHE.pop, key, None)
    except TypeError:  # pragma: no cover - plans are always weakref-able
        return layout
    _LAYOUT_CACHE[key] = (ref, layout)
    return layout
