"""The store block kernel: compiled-tier codegen over flat shared views.

Reuses the compiled backend's expression lowering (constant folding
with interpreter float arithmetic, affine stride/offset subscripts,
float-leaf index values) but retargets reads and writes at the shared
buffers: a coords -> absolute-slot dict per array resolves each access
into one indexed load/store on the flat ``float64`` values view, and
every write also stamps the parallel ``int64`` grid with the global
sequential rank of its computation (``rank * nstmts + k`` -- the same
stamp the interpreter records), which is how the parent reconstructs
write stamps without shipping any dict home.

Two parity details are load-bearing:

- every array read is wrapped in ``float(...)`` so the arithmetic runs
  on Python floats: numpy float64 operands would turn a division by
  zero into ``inf`` where the interpreter raises ``ZeroDivisionError``;
- a ``KeyError`` from a slot lookup means the access fell outside the
  block's regions; the slow path re-executes that one statement through
  the interpreter's ``eval_expr`` in exactly its evaluation order, so a
  sabotaged plan raises the very same
  :class:`~repro.machine.memory.RemoteAccessError` the interpreter
  raises first.

Anything :class:`~repro.runtime.engine.compiled.KernelCompileError`
rejects cannot use the store; the engine then runs the by-value path
(whose workers fall back to the interpreter per nest), so the store
never changes observable behavior -- only speed.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.lang.ast import ArrayRef, LoopNest
from repro.runtime.engine.compiled import (
    KernelCompileError,
    _compile,
    _coord_srcs,
    _iteration_prelude,
    _tuple_src,
    _value_indices,
    _value_src,
)

__all__ = ["KernelCompileError", "compile_store_kernel"]

#: (nest, scalars, has_live, rank_rect) -> compiled store kernel
_STORE_KERNEL_CACHE: dict[tuple, Callable] = {}


def compile_store_kernel(nest: LoopNest, scalars: Mapping[str, float],
                         has_live: bool,
                         rank_rect: Optional[tuple[tuple[int, ...],
                                                   tuple[int, ...]]]
                         ) -> Callable:
    """``fn(bindex, iterations, idx, values, stamps, live, rank_of,
    remote)`` over the flat shared views.

    ``idx`` maps array name -> (coords -> absolute slot) for the block
    being run; ``values``/``stamps`` are the full flat views.  Returns
    ``(executed_iterations, per-statement execution counts)`` exactly
    like the compiled block kernel.
    """
    key = (nest, tuple(sorted(scalars.items())), has_live, rank_rect)
    fn = _STORE_KERNEL_CACHE.get(key)
    if fn is not None:
        return fn
    indices = nest.indices
    nstmts = len(nest.statements)
    names = nest.array_names()
    ivar = {n: f"_i{j}" for j, n in enumerate(names)}

    def read_src(ref: ArrayRef) -> str:
        coords = _coord_srcs(ref, indices)
        return f"float(_vals[{ivar[ref.array]}[{_tuple_src(coords)}]])"

    if rank_rect is not None:
        los, strides = rank_rect
        terms = [f"(i{k} - {lo}) * {s}" if s != 1 else f"(i{k} - {lo})"
                 for k, (lo, s) in enumerate(zip(los, strides)) if s != 0]
        rank_src = " + ".join(terms) or "0"
    else:
        rank_src = "_rank_of(_it)"

    lines = ["def _store_kernel(_bindex, _iters, _idx, _vals, _stamps, "
             "_live, _rank_of, _remote):"]
    for n in names:
        lines.append(f"    {ivar[n]} = _idx[{n!r}]")
    for k in range(nstmts):
        lines.append(f"    _n{k} = 0")
    lines.append("    _ex = 0")
    lines.append("    for _it in _iters:")
    ind = "        "
    for pl in _iteration_prelude(nest.depth, _value_indices(nest)):
        lines.append(ind + pl)
    lines.append(ind + f"_r = ({rank_src}) * {nstmts}")
    if has_live:
        lines.append(ind + "_any = False")
    for k, stmt in enumerate(nest.statements):
        sind = ind
        if has_live:
            lines.append(ind + f"if ({k}, _it) in _live:")
            sind = ind + "    "
        val = _value_src(stmt.rhs, indices, scalars, read_src)
        lhs = _coord_srcs(stmt.lhs, indices)
        wvar = ivar[stmt.lhs.array]
        lines += [
            sind + "try:",
            sind + f"    _val = float({val})",
            sind + f"    _p = {wvar}[{_tuple_src(lhs)}]",
            sind + "    _vals[_p] = _val",
            sind + f"    _stamps[_p] = _r + {k}",
            sind + "except KeyError:",
            sind + f"    _remote({k}, _it)",
            sind + f"_n{k} += 1",
        ]
        if has_live:
            lines.append(sind + "_any = True")
    if has_live:
        lines += [ind + "if _any:", ind + "    _ex += 1"]
    else:
        lines.append(ind + "_ex += 1")
    counts = ", ".join(f"_n{k}" for k in range(nstmts))
    lines.append(f"    return _ex, ({counts},)")
    fn = _compile("\n".join(lines), "_store_kernel", {})
    _STORE_KERNEL_CACHE[key] = fn
    return fn
