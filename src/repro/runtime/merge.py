"""Last-writer merge of replicated array copies.

Under the duplicate-data strategy several processors hold (and may
write) private copies of one element; the sequentially correct final
value is the one produced by the lexicographically last writing
computation -- exactly the output-dependence order the paper preserves.
:func:`merge_copies` reconstructs global arrays by picking, per
element, the copy with the greatest write timestamp (initial values
where nobody wrote).

Two equivalent paths produce bit-identical results:

- the **dict path** walks ``result.write_stamps`` and the per-block
  memory dicts element by element -- the reference semantics, and the
  only path available without numpy;
- the **view path** runs when a shared-memory store run left
  ``result.merge_data`` behind (per-array coords / stamps / values
  ndarrays of every written slot): the winners are selected with one
  stable argsort per array and scattered straight into the merged
  grid's flat view through
  :meth:`~repro.runtime.arrays.DataSpace.linear_index` -- no
  per-element dict reconstruction at all.

Tie-breaking: write stamps are globally unique in any real run (stamp
= ``rank * nstmts + k`` over a partition of the iteration space), but
both paths still pin the same *first-writer-wins-on-equal-stamps* rule
-- the dict path keeps the earliest entry (strict ``>`` comparison),
and the view path sorts equal stamps so the earliest slot is assigned
last -- so even synthetic duplicate stamps cannot diverge.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime import numpy_compat as npc
from repro.runtime.arrays import Coords, DataSpace
from repro.runtime.parallel import ParallelResult


def _merge_views(merge_data: dict, merged: dict[str, DataSpace]) -> None:
    """Scatter the last writers from store views into the merged grids."""
    np = npc.np
    for name, (coords, stamps, values) in merge_data.items():
        if not len(stamps):
            continue
        flat = merged[name].linear_index(coords)
        # last assignment wins: ascending stamp order, and on (synthetic)
        # equal stamps descending entry order so the first entry lands last
        n = len(stamps)
        order = np.lexsort((np.arange(n, 0, -1), stamps))
        merged[name].data.reshape(-1)[flat[order]] = values[order]


def merge_copies(result: ParallelResult,
                 initial: dict[str, DataSpace]) -> dict[str, DataSpace]:
    """Merge local copies into fresh global arrays.

    ``initial`` must be the same initial arrays the parallel run was
    seeded from (unwritten elements keep their initial values).
    """
    merged = {name: ds.copy() for name, ds in initial.items()}
    merge_data = getattr(result, "merge_data", None)
    if merge_data is not None and npc.np is not None:
        _merge_views(merge_data, merged)
        return merged
    # element -> (stamp, value) of the best writer seen so far
    best: dict[tuple[str, Coords], tuple[int, float]] = {}
    for (block, array, coords), stamp in result.write_stamps.items():
        value = result.memories[block].values[array][coords]
        key = (array, coords)
        cur = best.get(key)
        if cur is None or stamp > cur[0]:
            best[key] = (stamp, value)
    for (array, coords), (_stamp, value) in best.items():
        merged[array][coords] = value
    return merged
