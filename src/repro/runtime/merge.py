"""Last-writer merge of replicated array copies.

Under the duplicate-data strategy several processors hold (and may
write) private copies of one element; the sequentially correct final
value is the one produced by the lexicographically last writing
computation -- exactly the output-dependence order the paper preserves.
:func:`merge_copies` reconstructs global arrays by picking, per
element, the copy with the greatest write timestamp (initial values
where nobody wrote).
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.arrays import Coords, DataSpace
from repro.runtime.parallel import ParallelResult


def merge_copies(result: ParallelResult,
                 initial: dict[str, DataSpace]) -> dict[str, DataSpace]:
    """Merge local copies into fresh global arrays.

    ``initial`` must be the same initial arrays the parallel run was
    seeded from (unwritten elements keep their initial values).
    """
    merged = {name: ds.copy() for name, ds in initial.items()}
    # element -> (stamp, value) of the best writer seen so far
    best: dict[tuple[str, Coords], tuple[int, float]] = {}
    for (block, array, coords), stamp in result.write_stamps.items():
        value = result.memories[block].values[array][coords]
        key = (array, coords)
        cur = best.get(key)
        if cur is None or stamp > cur[0]:
            best[key] = (stamp, value)
    for (array, coords), (_stamp, value) in best.items():
        merged[array][coords] = value
    return merged
