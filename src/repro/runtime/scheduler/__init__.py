"""Dynamic, fault-tolerant block scheduling (see :mod:`.core`)."""

from repro.runtime.scheduler.core import (
    ATTEMPTS_ENV_VAR,
    BATCH_ENV_VAR,
    DYNAMIC,
    SCHED_ENV_VAR,
    STATIC,
    TIMEOUT_ENV_VAR,
    BlockScheduler,
    LeaseRecord,
    PoolCollapse,
    RetryPolicy,
    SchedulerError,
    SchedulerResult,
    default_batch_size,
    scheduler_mode,
)
from repro.runtime.scheduler.faults import (
    CHAOS_ENV_VAR,
    FaultPlan,
    current_fault_plan,
    use_fault_plan,
)
from repro.runtime.scheduler.timeline import render_timeline

__all__ = [
    "ATTEMPTS_ENV_VAR",
    "BATCH_ENV_VAR",
    "CHAOS_ENV_VAR",
    "DYNAMIC",
    "SCHED_ENV_VAR",
    "STATIC",
    "TIMEOUT_ENV_VAR",
    "BlockScheduler",
    "FaultPlan",
    "LeaseRecord",
    "PoolCollapse",
    "RetryPolicy",
    "SchedulerError",
    "SchedulerResult",
    "current_fault_plan",
    "default_batch_size",
    "render_timeline",
    "scheduler_mode",
    "use_fault_plan",
]
