"""The chaos layer: deterministic fault injection for the block scheduler.

A :class:`FaultPlan` describes *what goes wrong* during a multiprocess
run: workers crash (the process dies mid-lease), workers run slow (a
delay before the lease executes, so its deadline expires and the blocks
are stolen), or results are lost in flight (the work happened but the
parent never sees it).  Faults exist to demonstrate the paper's point
operationally: because a communication-free partition makes every
iteration block independent (Theorems 1-4), any lease can be killed and
re-executed anywhere with zero coordination -- retries are idempotent
*by theorem*, and a crashed-and-retried run is bit-identical to an
undisturbed one.

Injection decisions are **deterministic**: each (unit, attempt) pair
draws from a hash of ``(seed, unit, attempt)``, so a chaos run is
reproducible bit-for-bit -- same seed, same crashes, same retries, same
timeline.  A retried lease is a *new* attempt and draws fresh, so
recovery makes progress; with ``shield_final`` (the default) the last
allowed attempt always runs clean, so any ``crash_prob < 1`` --
including 1.0 -- still terminates.

``slow_blocks`` is different from the probabilistic faults: it is a
deterministic per-block delay (a synthetic straggler), used by
``benchmarks/bench_scheduler.py`` to skew block costs and show dynamic
leasing beating static chunking.

The active plan is scoped like the tracer and the metrics registry:
:func:`use_fault_plan` pushes one for a region of code,
:func:`current_fault_plan` reads it (falling back to the
``REPRO_CHAOS`` environment variable), so chaos reaches the engine
through context, never through the ``Engine.run_blocks`` signature.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.ctxstack import ScopeStack

#: Environment variable holding a fault-plan spec (see :meth:`FaultPlan.parse`).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Fault kinds a lease can draw.
CRASH = "crash"
SLOW = "slow"
DROP = "drop"


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and with which seed.

    Probabilities are per *lease* (one attempt of one work unit), drawn
    deterministically from ``seed``; they classify exclusively in the
    order crash > drop > slow, so ``crash_prob + drop_prob + slow_prob``
    should stay <= 1.
    """

    #: probability a lease's worker process dies (``os._exit``) after
    #: doing the work -- the result is lost *and* the pool breaks
    crash_prob: float = 0.0
    #: probability a lease is delayed by ``slow_ms`` before executing
    slow_prob: float = 0.0
    #: delay applied to slow leases and to ``slow_blocks``, milliseconds
    slow_ms: float = 50.0
    #: probability a lease completes but its result is dropped in flight
    drop_prob: float = 0.0
    #: blocks that are *always* delayed by ``slow_ms`` (synthetic
    #: stragglers for the static-vs-dynamic benchmark)
    slow_blocks: tuple[int, ...] = ()
    #: seed for the deterministic per-(unit, attempt) draws
    seed: int = 0
    #: when True, the final allowed attempt of a unit never draws a
    #: fault, so recovery terminates even at ``crash_prob=1.0``
    shield_final: bool = True

    def __post_init__(self) -> None:
        for name in ("crash_prob", "slow_prob", "drop_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")

    # -- injection decisions ----------------------------------------------
    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return bool(self.crash_prob or self.slow_prob or self.drop_prob
                    or self.slow_blocks)

    def draw(self, unit: int, attempt: int) -> float:
        """The deterministic uniform draw in [0, 1) for one lease."""
        h = hashlib.sha256(
            f"repro-chaos:{self.seed}:{unit}:{attempt}".encode()).digest()
        return int.from_bytes(h[:8], "big") / 2.0 ** 64

    def decision(self, unit: int, attempt: int) -> Optional[str]:
        """The fault (if any) injected into lease (unit, attempt)."""
        if not (self.crash_prob or self.slow_prob or self.drop_prob):
            return None
        u = self.draw(unit, attempt)
        if u < self.crash_prob:
            return CRASH
        if u < self.crash_prob + self.drop_prob:
            return DROP
        if u < self.crash_prob + self.drop_prob + self.slow_prob:
            return SLOW
        return None

    def delays_block(self, block: int) -> bool:
        return block in self.slow_blocks

    # -- spec round-trip --------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, "FaultPlan", None]) -> Optional["FaultPlan"]:
        """Parse ``"crash-prob=0.2,slow-ms=30,seed=7"`` into a plan.

        Keys (dashes or underscores): ``crash-prob``, ``slow-prob``,
        ``slow-ms``, ``drop-prob``, ``seed``, ``shield-final`` (0/1),
        ``slow-blocks`` (a half-open range ``lo:hi``).  ``None``/empty
        parses to ``None``; a :class:`FaultPlan` passes through.
        """
        if spec is None or isinstance(spec, cls):
            return spec or None
        spec = spec.strip()
        if not spec:
            return None
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"chaos spec item {part!r} is not KEY=VALUE")
            key = key.strip().lower().replace("-", "_")
            value = value.strip()
            if key == "slow_blocks":
                lo, sep2, hi = value.partition(":")
                if not sep2:
                    raise ValueError(
                        f"slow-blocks expects LO:HI, got {value!r}")
                kwargs[key] = tuple(range(int(lo), int(hi)))
            elif key == "seed":
                kwargs[key] = int(value)
            elif key == "shield_final":
                kwargs[key] = bool(int(value))
            elif key in ("crash_prob", "slow_prob", "slow_ms", "drop_prob"):
                kwargs[key] = float(value)
            else:
                known = ", ".join(
                    f.name.replace("_", "-") for f in fields(cls))
                raise ValueError(
                    f"unknown chaos key {key!r}; known: {known}")
        return cls(**kwargs)

    def describe(self) -> str:
        """A round-trippable one-line spec of the non-default fields."""
        bits = []
        if self.crash_prob:
            bits.append(f"crash-prob={self.crash_prob:g}")
        if self.drop_prob:
            bits.append(f"drop-prob={self.drop_prob:g}")
        if self.slow_prob:
            bits.append(f"slow-prob={self.slow_prob:g}")
        if self.slow_prob or self.slow_blocks:
            bits.append(f"slow-ms={self.slow_ms:g}")
        if self.slow_blocks:
            lo, hi = min(self.slow_blocks), max(self.slow_blocks) + 1
            bits.append(f"slow-blocks={lo}:{hi}")
        bits.append(f"seed={self.seed}")
        if not self.shield_final:
            bits.append("shield-final=0")
        return ",".join(bits)


# ---------------------------------------------------------------------------
# the scoped active plan
# ---------------------------------------------------------------------------

_plan_stack = ScopeStack()


def current_fault_plan() -> Optional[FaultPlan]:
    """The fault plan chaos-aware call sites consult.

    The innermost :func:`use_fault_plan` scope *on this thread* wins
    (including an explicit ``None``, which disables chaos for that
    scope); outside any scope the ``REPRO_CHAOS`` environment variable
    is parsed.
    """
    if _plan_stack.depth():
        return _plan_stack.top()
    spec = os.environ.get(CHAOS_ENV_VAR)
    return FaultPlan.parse(spec) if spec else None


def use_fault_plan(plan: Union[FaultPlan, str, None]):
    """Scope the active fault plan (a plan, a spec string, or ``None``)."""
    return _plan_stack.scoped(FaultPlan.parse(plan))
