"""The dynamic, fault-tolerant block scheduler.

The multiprocess engine used to split the plan's blocks into one static
contiguous chunk per worker: all-or-nothing, no recovery, and a single
slow worker stalls the whole run.  This module replaces that split with
a work-queue dispatcher built on the property the paper proves
(Theorems 1-4): iteration blocks of a communication-free partition are
*independent*, so any lease can be killed, lost, or duplicated and
simply re-executed -- retries are idempotent by theorem.

Mechanics:

- blocks are grouped into small contiguous **units** (``batch`` blocks
  each); each attempt to run a unit is a **lease** with a deadline;
- a lease payload is normally just a **descriptor** -- segment names
  into the run's :class:`~repro.runtime.blockstore.SharedBlockStore`
  plus block indices -- so nothing heavy crosses the process boundary;
  without a store (no numpy, ``REPRO_NO_SHM``) the legacy by-value
  payload (plan + pickled memories) is shipped instead;
- the process pool comes from a :class:`~repro.runtime.pool.WorkerPool`
  -- the ambient one (a :class:`~repro.api.Session` keeps a persistent,
  warm pool across runs) or an ephemeral one owned by this run;
- leases are dispatched to a process pool as slots free up (the pool's
  own queue is the work queue); a lease past its deadline is *expired*
  -- its blocks are stolen by a fresh lease and the late result, if it
  ever arrives, is discarded (idempotence makes the race harmless);
- a worker crash (real, or injected by the chaos layer) breaks the
  pool: the scheduler respawns it and re-leases everything that was in
  flight, with capped exponential backoff per unit;
- before any retry the scheduler consults the plan's partition
  metadata (:func:`repro.obs.audit.block_cross_accesses`) and refuses
  to re-run a block that is not disjoint -- an unsafe retry raises the
  same :class:`~repro.machine.memory.RemoteAccessError` a strict run
  would;
- a unit that exhausts its attempts raises :class:`SchedulerError`
  (chaos non-recovery); a pool that cannot be (re)created raises
  :class:`PoolCollapse`, which the multiprocess engine turns into the
  loud in-process degradation path (``engine.multiproc.degraded``).

Everything is observable: a ``scheduler.run`` span anchors per-worker
lanes (worker observability is re-homed exactly as the static path did,
via :mod:`repro.obs.aggregate`), every lease/retry/expiry/respawn is a
trace event and a ``scheduler.*`` counter, and the full lease history
is kept as a :class:`SchedulerResult` timeline that ``repro chaos``
renders as ASCII.

The *static* mode (``REPRO_SCHED=static``) is the degenerate
configuration -- one lease per worker, no deadline, one attempt -- kept
for the straggler-mitigation benchmark and as an escape hatch.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.machine.memory import RemoteAccessError
from repro.runtime.scheduler.faults import CRASH, DROP, SLOW, FaultPlan

#: Environment variable selecting the dispatch mode.
SCHED_ENV_VAR = "REPRO_SCHED"
#: Environment variable overriding the blocks-per-unit batch size.
BATCH_ENV_VAR = "REPRO_SCHED_BATCH"
#: Environment variable overriding the per-unit attempt cap.
ATTEMPTS_ENV_VAR = "REPRO_SCHED_ATTEMPTS"
#: Environment variable overriding the lease deadline (seconds; "none"
#: disables deadlines).
TIMEOUT_ENV_VAR = "REPRO_SCHED_TIMEOUT"

DYNAMIC = "dynamic"
STATIC = "static"

#: Sentinel a worker returns instead of its result for an injected
#: lost-result fault.
_DROPPED = "__repro_dropped__"


class SchedulerError(Exception):
    """The scheduler could not recover (a unit exhausted its attempts)."""


class PoolCollapse(RuntimeError):
    """The worker pool cannot be (re)created or kept alive; callers
    degrade to in-process execution."""


def scheduler_mode() -> str:
    """The dispatch mode from ``$REPRO_SCHED`` (default: dynamic)."""
    mode = os.environ.get(SCHED_ENV_VAR, DYNAMIC).strip().lower()
    if mode not in (DYNAMIC, STATIC):
        raise ValueError(
            f"{SCHED_ENV_VAR}={mode!r}: expected {DYNAMIC!r} or {STATIC!r}")
    return mode


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs: attempts, backoff, deadlines, respawn budget.

    ``max_attempts`` bounds *fault-consumed* attempts (a lease that
    crashed or whose result was dropped); leases lost to collateral
    damage (the pool another lease's crash took down) or stolen after a
    deadline do not consume the budget -- they redraw the same attempt.
    Steals are bounded separately (``max_steals`` per unit, with the
    deadline doubling on each steal), so every run still terminates.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    #: lease deadline in seconds; None disables expiry-stealing
    lease_timeout_s: Optional[float] = 30.0
    #: deadline expiries tolerated per unit (the deadline doubles on
    #: each steal, so a merely-slow unit eventually gets to finish)
    max_steals: int = 8
    #: pool respawns tolerated; None derives a budget from the unit count
    max_respawns: Optional[int] = None

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        kwargs: dict = {}
        attempts = os.environ.get(ATTEMPTS_ENV_VAR)
        if attempts:
            kwargs["max_attempts"] = max(1, int(attempts))
        timeout = os.environ.get(TIMEOUT_ENV_VAR)
        if timeout:
            kwargs["lease_timeout_s"] = (None if timeout.lower() == "none"
                                         else float(timeout))
        return cls(**kwargs)

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff before attempt ``attempt`` (>= 1)."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 1)))

    def respawn_budget(self, units: int) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        # chaos-induced crashes are bounded by units * (attempts - 1)
        # (the shielded final attempt never crashes); leave headroom
        return max(8, units * self.max_attempts)


def default_batch_size(nblocks: int, workers: int, mode: str) -> int:
    """Blocks per unit: static = one chunk per worker; dynamic = small
    batches (~4 units per worker) so the queue can rebalance."""
    env = os.environ.get(BATCH_ENV_VAR)
    if env:
        return max(1, int(env))
    if mode == STATIC:
        return max(1, -(-nblocks // workers))
    return max(1, -(-nblocks // (workers * 4)))


@dataclass
class LeaseRecord:
    """One lease in the timeline: (unit, attempt) with its outcome."""

    unit: int
    attempt: int
    blocks: tuple[int, ...]
    start_s: float
    end_s: float = 0.0
    #: injected fault for this lease ("" = none)
    fault: str = ""
    #: pending | ok | crash | killed | dropped | expired | late
    outcome: str = "pending"
    #: worker process id (known only for results that came home)
    pid: Optional[int] = None

    def to_json(self) -> dict:
        return {
            "unit": self.unit, "attempt": self.attempt,
            "blocks": list(self.blocks),
            "start_ms": round(self.start_s * 1e3, 3),
            "end_ms": round(self.end_s * 1e3, 3),
            "fault": self.fault, "outcome": self.outcome, "pid": self.pid,
        }


@dataclass
class SchedulerResult:
    """What the dispatcher did: lease history plus recovery counters."""

    mode: str
    units: int
    blocks: int
    workers: int
    batch: int
    chaos: str = ""
    leases: list[LeaseRecord] = field(default_factory=list)
    retries: int = 0
    leases_expired: int = 0
    blocks_stolen: int = 0
    respawns: int = 0
    crashes: int = 0
    dropped: int = 0
    completed_units: int = 0
    wall_s: float = 0.0

    @property
    def recovered(self) -> bool:
        """Did every unit come home despite the injected faults?"""
        return self.completed_units == self.units

    @property
    def ok(self) -> bool:
        return self.recovered

    @property
    def faults_injected(self) -> int:
        return self.crashes + self.dropped + self.leases_expired

    def summary(self) -> str:
        chaos = f" under chaos [{self.chaos}]" if self.chaos else ""
        return (f"scheduler[{self.mode}]: {self.completed_units}/{self.units} "
                f"units ({self.blocks} blocks, batch {self.batch}) on "
                f"{self.workers} workers{chaos}; {len(self.leases)} leases, "
                f"{self.retries} retries, {self.leases_expired} expired, "
                f"{self.blocks_stolen} blocks stolen, {self.respawns} "
                f"respawns")

    def to_json(self) -> dict:
        return {
            "mode": self.mode, "units": self.units, "blocks": self.blocks,
            "workers": self.workers, "batch": self.batch,
            "chaos": self.chaos, "ok": self.ok,
            "recovered": self.recovered,
            "leases": [r.to_json() for r in self.leases],
            "retries": self.retries,
            "leases_expired": self.leases_expired,
            "blocks_stolen": self.blocks_stolen,
            "respawns": self.respawns, "crashes": self.crashes,
            "dropped": self.dropped,
            "completed_units": self.completed_units,
            "wall_ms": round(self.wall_s * 1e3, 3),
        }

    def publish(self, registry=None) -> None:
        """Publish run-level gauges (counters are inc'd live)."""
        from repro.obs.metrics import current_registry

        reg = registry if registry is not None else current_registry()
        reg.set("scheduler.units", self.units)
        reg.set("scheduler.batch", self.batch)
        reg.set("scheduler.recovered", int(self.recovered))


@dataclass
class _UnitOutcome:
    """Per-unit result a worker fills and pickles back (the
    ``ParallelResult`` stand-in the compiled tier populates)."""

    write_stamps: dict = field(default_factory=dict)
    executed_iterations: int = 0
    skipped_computations: int = 0
    mems: dict = field(default_factory=dict)
    # store mode: block index -> (reads, writes) -- values and stamps
    # stay in the shared store, only the counters come home
    counts: dict = field(default_factory=dict)
    # (pid, array, coords, is_write) of the first violation, or None
    remote: Optional[tuple] = None
    obs: Any = None  # WorkerObs


@dataclass
class _Unit:
    uid: int
    blocks: list
    attempts: int = 0       # fault-consumed attempts (crash / drop)
    steals: int = 0         # deadline expiries so far
    ready_at: float = 0.0   # backoff gate (scheduler-relative seconds)
    done: bool = False


def _run_lease(payload):
    """Worker entry point: one lease = one unit on the compiled tier.

    Enacts the lease's injected fault: a slow lease sleeps before the
    work, a crashed lease does the work then kills its own process (the
    result dies with it), a dropped lease does the work and returns a
    loss marker instead of the result.
    """
    (uid, attempt, sub, mems, scalars, trace_enabled, fault, slow_s,
     block_slow_s, slow_blocks) = payload
    from repro.obs.aggregate import capture_worker_obs
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.trace import Tracer, use_tracer
    from repro.runtime.engine.base import get_engine

    if fault == SLOW and slow_s > 0:
        time.sleep(slow_s)
    tracer = Tracer(enabled=trace_enabled)
    registry = MetricsRegistry()
    out = _UnitOutcome()
    with use_tracer(tracer), use_registry(registry):
        registry.inc("engine.worker.chunks")
        registry.inc("engine.worker.blocks", len(sub.blocks))
        engine = get_engine("compiled")
        try:
            if slow_blocks and block_slow_s > 0:
                # synthetic stragglers: delay the marked blocks only
                for b in sub.blocks:
                    if b.index in slow_blocks:
                        time.sleep(block_slow_s)
                    engine.run_blocks(replace(sub, blocks=[b]), mems, out,
                                      {}, scalars, strict=True)
            else:
                engine.run_blocks(sub, mems, out, {}, scalars, strict=True)
        except RemoteAccessError as exc:
            out.remote = (exc.pid, exc.array, exc.coords, exc.is_write)
        registry.inc("engine.worker.executed_iterations",
                     out.executed_iterations)
    out.mems = mems
    out.obs = capture_worker_obs(tracer, registry)
    if fault == CRASH:
        os._exit(3)
    if fault == DROP:
        return (uid, attempt, _DROPPED)
    return (uid, attempt, out)


class BlockScheduler:
    """Work-queue dispatcher over a process pool; see module docstring."""

    def __init__(
        self,
        plan,
        memories: dict,
        scalars: Mapping[str, float],
        *,
        workers: int,
        batch: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        policy: Optional[RetryPolicy] = None,
        mode: Optional[str] = None,
        store=None,
        pool=None,
    ) -> None:
        self.plan = plan
        self.memories = memories
        self.scalars = dict(scalars)
        self.workers = max(1, workers)
        #: a SharedBlockStore for by-descriptor leases, or None for the
        #: by-value path (no numpy / REPRO_NO_SHM / unlowerable nest)
        self.store = store
        #: an external (session-scoped) WorkerPool, or None to build an
        #: ephemeral pool per run
        self.pool = pool
        self.mode = mode if mode is not None else scheduler_mode()
        self.faults = faults
        if policy is None:
            policy = RetryPolicy.from_env()
            if self.mode == STATIC:
                policy = replace(policy, max_attempts=1, lease_timeout_s=None)
        self.policy = policy
        self.batch = batch if batch is not None else default_batch_size(
            len(plan.blocks), self.workers, self.mode)
        self._safety: dict[int, int] = {}  # block -> static cross count

    # -- setup ------------------------------------------------------------
    def _units(self) -> list[_Unit]:
        blocks = self.plan.blocks
        return [_Unit(uid=i // self.batch, blocks=blocks[i:i + self.batch])
                for i in range(0, len(blocks), self.batch)]

    def _worker_pool(self):
        """The external pool, or a fresh ephemeral one (owned flag)."""
        from repro.runtime.pool import WorkerPool

        if self.pool is not None:
            return self.pool, False
        return WorkerPool(), True

    # -- recovery safety --------------------------------------------------
    def _assert_retry_safe(self, unit: _Unit) -> None:
        """Refuse to re-lease a block that is not provably disjoint.

        Retry idempotence rests on the plan's theorem: a block touching
        only its own data blocks can re-run anywhere without having
        leaked or observed state.  The check replays just this unit's
        blocks statically (:func:`repro.obs.audit.block_cross_accesses`)
        and raises the violation a strict run would raise.
        """
        from repro.obs.audit import block_cross_accesses
        from repro.obs.metrics import current_registry

        for b in unit.blocks:
            cross = self._safety.get(b.index)
            if cross is None:
                cross, violations = block_cross_accesses(self.plan, b.index)
                self._safety[b.index] = cross
                if cross:
                    current_registry().inc("scheduler.unsafe_retries")
                    v = violations[0]
                    raise RemoteAccessError(
                        self.memories[b.index].pid, v.array, v.element,
                        is_write=v.is_write)
            elif cross:  # pragma: no cover - first hit always raises
                raise RemoteAccessError(
                    self.memories[b.index].pid, "?", (), is_write=None)

    # -- the dispatch loop ------------------------------------------------
    def run(self, result) -> SchedulerResult:
        """Dispatch every block, recover from failures, merge into
        ``result`` (a :class:`~repro.runtime.parallel.ParallelResult`)
        deterministically.  May raise :class:`PoolCollapse` (caller
        degrades), :class:`SchedulerError` (non-recovery) or
        :class:`~repro.machine.memory.RemoteAccessError` (the plan was
        never communication-free)."""
        from repro.obs.aggregate import merge_worker_obs
        from repro.obs.flight import dump_blackbox, flight
        from repro.obs.metrics import current_registry
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        registry = current_registry()
        fr = flight()
        units = self._units()
        sres = SchedulerResult(
            mode=self.mode, units=len(units), blocks=len(self.plan.blocks),
            workers=self.workers, batch=self.batch,
            chaos=self.faults.describe() if self.faults
            and self.faults.active else "")
        outcomes: dict[int, _UnitOutcome] = {}
        epoch = time.perf_counter()

        fr.record("event", "scheduler.start", mode=self.mode,
                  workers=self.workers, units=len(units),
                  blocks=sres.blocks, chaos=sres.chaos)
        with tracer.span("scheduler.run", category="scheduler",
                         mode=self.mode, workers=self.workers,
                         units=len(units), blocks=sres.blocks,
                         batch=self.batch, chaos=sres.chaos) as ssp:
            try:
                self._loop(units, outcomes, sres, epoch, tracer, registry)
            except (SchedulerError, PoolCollapse) as exc:
                # post-mortem: dump the flight ring with the lease
                # timeline attached before the failure propagates
                sres.completed_units = len(outcomes)
                sres.wall_s = time.perf_counter() - epoch
                fr.error("scheduler.abort", exc, mode=self.mode,
                         completed=len(outcomes), units=len(units))
                dump_blackbox(f"{type(exc).__name__}: {exc}",
                              extra={"scheduler": sres.to_json()})
                raise
            finally:
                sres.completed_units = len(outcomes)
                sres.wall_s = time.perf_counter() - epoch
                result.scheduler = sres
                sres.publish(registry)
                fr.record("event", "scheduler.done",
                          recovered=sres.recovered, retries=sres.retries,
                          respawns=sres.respawns,
                          wall_ms=round(sres.wall_s * 1e3, 1))
                ssp.set(leases=len(sres.leases), retries=sres.retries,
                        respawns=sres.respawns, recovered=sres.recovered)
                # re-home worker observability in the finally, so even
                # an aborted run keeps its worker lanes and counters
                offset = ssp.start_ns if ssp.recording else 0
                parent_id = ssp.span_id if ssp.recording else None
                for uid in sorted(outcomes):
                    obs = outcomes[uid].obs
                    if obs is not None:
                        merge_worker_obs(tracer, registry, obs,
                                         ts_offset_ns=offset,
                                         parent_span_id=parent_id)

        # merge in unit (= block) order: deterministic by design -- write
        # stamps are keyed by block index and units never overlap
        ordered = [outcomes[uid] for uid in sorted(outcomes)]
        for out in ordered:
            if out.remote is not None:
                pid, array, coords, is_write = out.remote
                self.memories[pid].note_remote(is_write)
                raise RemoteAccessError(pid, array, coords,
                                        is_write=is_write)
        if self.store is not None:
            # by-descriptor leases: values and stamps live in the shared
            # store; only the access counters came home per block
            for out in ordered:
                for bindex, (reads, writes) in out.counts.items():
                    mem = self.memories[bindex]
                    mem.reads += reads
                    mem.writes += writes
                result.executed_iterations += out.executed_iterations
                result.skipped_computations += out.skipped_computations
            self.store.collect(result, self.memories)
            return sres
        for out in ordered:
            for pid, worker_mem in out.mems.items():
                mem = self.memories[pid]
                mem.values = worker_mem.values
                mem.allocated = worker_mem.allocated
                mem.reads = worker_mem.reads
                mem.writes = worker_mem.writes
                mem.remote_attempts = worker_mem.remote_attempts
                mem.remote_read_attempts = worker_mem.remote_read_attempts
                mem.remote_write_attempts = worker_mem.remote_write_attempts
            result.write_stamps.update(out.write_stamps)
            result.executed_iterations += out.executed_iterations
            result.skipped_computations += out.skipped_computations
        return sres

    def _snapshot_state(self, units, outcomes, inflight, pending, sres,
                        elapsed: float) -> dict:
        """One ``repro top`` snapshot of the live dispatch state."""
        from repro.obs.slo import comm_optimality

        done_blocks = sum(len(u.blocks) for u in units if u.done)
        lanes: dict[str, dict] = {}
        for uid, out in outcomes.items():
            pid = out.obs.pid if out.obs is not None else 0
            lane = lanes.setdefault(str(pid), {"blocks": 0, "units": 0})
            lane["units"] += 1
            lane["blocks"] += len(units[uid].blocks)
        total = remote = 0
        for mem in self.memories.values():
            total += mem.reads + mem.writes
            remote += getattr(mem, "remote_attempts", 0)
        return {
            "phase": "execute",
            "backend": "multiprocess",
            "mode": self.mode,
            "case": getattr(getattr(self.plan, "nest", None), "name", None)
            or "?",
            "elapsed_s": elapsed,
            "units": len(units), "units_done": len(outcomes),
            "blocks": len(self.plan.blocks), "blocks_done": done_blocks,
            "blocks_per_sec": done_blocks / elapsed if elapsed > 0 else 0.0,
            "leases": {
                "total": len(sres.leases),
                "ok": sum(1 for r in sres.leases if r.outcome == "ok"),
                "inflight": len(inflight), "pending": len(pending),
                "expired": sres.leases_expired, "crashed": sres.crashes,
                "dropped": sres.dropped,
            },
            "workers": lanes,
            "comm_optimality": comm_optimality(total, remote),
            "remote_accesses": remote,
        }

    def _loop(self, units, outcomes, sres, epoch, tracer, registry) -> None:
        from repro.obs.flight import flight
        from repro.obs.top import current_writer

        fr = flight()
        writer = current_writer()
        policy = self.policy
        budget = policy.respawn_budget(len(units))
        wpool, owned = self._worker_pool()
        pool = wpool.acquire(self.workers)
        pending: list[_Unit] = list(units)
        # future -> (unit, lease record, absolute deadline)
        inflight: dict = {}

        def now() -> float:
            return time.perf_counter() - epoch

        def submit(unit: _Unit) -> None:
            attempt = unit.attempts
            unit.attempts += 1
            fault = None
            if self.faults is not None and not (
                    self.faults.shield_final
                    and attempt >= policy.max_attempts - 1):
                fault = self.faults.decision(unit.uid, attempt)
            slow_blocks: tuple[int, ...] = ()
            slow_ms = self.faults.slow_ms if self.faults else 0.0
            if self.faults is not None and self.faults.slow_blocks:
                slow_blocks = tuple(b.index for b in unit.blocks
                                    if self.faults.delays_block(b.index))
            if self.store is not None:
                # by-descriptor lease: segment names + block indices
                from repro.runtime.blockstore.worker import run_store_lease

                fn = run_store_lease
                payload = (
                    unit.uid, attempt, self.store.descriptor(),
                    tuple(b.index for b in unit.blocks),
                    self.scalars, tracer.enabled, fault,
                    slow_ms / 1e3 if fault == SLOW else 0.0,
                    slow_ms / 1e3 if slow_blocks else 0.0, slow_blocks)
            else:
                fn = _run_lease
                payload = (
                    unit.uid, attempt, replace(self.plan, blocks=unit.blocks),
                    {b.index: self.memories[b.index] for b in unit.blocks},
                    self.scalars, tracer.enabled, fault,
                    slow_ms / 1e3 if fault == SLOW else 0.0,
                    slow_ms / 1e3 if slow_blocks else 0.0, slow_blocks)
            rec = LeaseRecord(unit=unit.uid, attempt=attempt,
                              blocks=tuple(b.index for b in unit.blocks),
                              start_s=now(), fault=fault or "")
            sres.leases.append(rec)
            registry.inc("scheduler.leases")
            tracer.event("scheduler.lease", category="scheduler",
                         unit=unit.uid, attempt=attempt, fault=fault or "")
            fr.record("lease", "submit", unit=unit.uid, attempt=attempt,
                      fault=fault or "")
            # each steal doubles the deadline, so a merely-slow unit
            # (queued behind sleepers, genuinely long) eventually runs out
            deadline = (math.inf if policy.lease_timeout_s is None
                        else rec.start_s
                        + policy.lease_timeout_s * (2.0 ** unit.steals))
            inflight[pool.submit(fn, payload)] = (unit, rec, deadline)

        def retry(unit: _Unit, rec: LeaseRecord, reason: str,
                  consume: bool = True) -> None:
            if not consume:
                # collateral kill or deadline steal: the lease drew no
                # fault of its own, so it redraws the same attempt
                unit.attempts -= 1
            if unit.attempts >= policy.max_attempts:
                raise SchedulerError(
                    f"unit {unit.uid} (blocks "
                    f"{[b.index for b in unit.blocks]}) not recovered: "
                    f"{reason} on all {policy.max_attempts} attempts")
            if unit.steals > policy.max_steals:
                raise SchedulerError(
                    f"unit {unit.uid} stolen {unit.steals} times without "
                    f"completing ({reason})")
            self._assert_retry_safe(unit)
            sres.retries += 1
            registry.inc("scheduler.retries")
            tracer.event("scheduler.retry", category="scheduler",
                         unit=unit.uid, attempt=unit.attempts, reason=reason)
            fr.record("lease", "retry", unit=unit.uid,
                      attempt=unit.attempts, reason=reason)
            unit.ready_at = now() + policy.backoff(max(1, unit.attempts))
            pending.append(unit)

        def reap(fut, t: float) -> bool:
            """Handle one completed future; returns True if the pool broke."""
            unit, rec, _ = inflight.pop(fut)
            # a lease already marked expired was replaced by a steal: its
            # failure is moot, but a result that beats the steal still wins
            expired = rec.outcome == "expired"
            if not expired:
                rec.end_s = t
            try:
                uid, attempt, out = fut.result()
            except BrokenProcessPool:
                if unit.done:
                    rec.outcome = "late"
                    return True
                if expired:
                    return True
                if rec.fault == CRASH:
                    rec.outcome = "crash"
                    sres.crashes += 1
                    registry.inc("scheduler.crashes")
                    retry(unit, rec, "worker crashed")
                else:
                    # collateral damage: this lease shared the pool that
                    # another lease's crash took down
                    rec.outcome = "killed"
                    retry(unit, rec, "pool broke", consume=False)
                return True
            if unit.done:
                rec.outcome = "late"
                registry.inc("scheduler.late_results")
                return False
            if out == _DROPPED:
                if not expired:
                    rec.outcome = "dropped"
                    sres.dropped += 1
                    registry.inc("scheduler.dropped")
                    retry(unit, rec, "result dropped")
                return False
            rec.outcome = "ok"
            rec.end_s = t
            rec.pid = out.obs.pid if out.obs is not None else None
            unit.done = True
            outcomes[uid] = out
            fr.record("lease", "ok", unit=uid, attempt=attempt, pid=rec.pid)
            return False

        try:
            while len(outcomes) < len(units):
                t = now()
                if writer is not None:
                    writer.maybe_write(lambda: self._snapshot_state(
                        units, outcomes, inflight, pending, sres, now()))
                for unit in [u for u in pending if u.ready_at <= t]:
                    pending.remove(unit)
                    submit(unit)
                if not inflight:
                    if not pending:  # pragma: no cover - defensive
                        raise SchedulerError(
                            "scheduler stalled with no work in flight")
                    time.sleep(max(0.0,
                                   min(u.ready_at for u in pending) - t))
                    continue
                next_deadline = min(dl for _, _, dl in inflight.values())
                timeout = min(0.25, max(0.005, next_deadline - t))
                if pending:
                    timeout = min(
                        timeout,
                        max(0.005,
                            min(u.ready_at for u in pending) - t))
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                t = now()
                broke = False
                for fut in done:
                    broke = reap(fut, t) or broke
                if broke:
                    # the executor is poisoned: every in-flight lease is
                    # gone; re-lease them all on a fresh pool
                    for fut, (unit, rec, _) in list(inflight.items()):
                        rec.end_s = t
                        if unit.done:
                            rec.outcome = "late"
                            continue
                        if rec.fault == CRASH:
                            rec.outcome = "crash"
                            sres.crashes += 1
                            registry.inc("scheduler.crashes")
                            retry(unit, rec, "worker crashed")
                        else:
                            rec.outcome = "killed"
                            retry(unit, rec, "pool broke", consume=False)
                    inflight.clear()
                    sres.respawns += 1
                    registry.inc("scheduler.respawns")
                    tracer.event("scheduler.respawn", category="scheduler",
                                 respawns=sres.respawns)
                    fr.record("event", "scheduler.respawn",
                              respawns=sres.respawns, budget=budget)
                    if sres.respawns > budget:
                        wpool.shutdown()
                        raise PoolCollapse(
                            f"worker pool broke {sres.respawns} times "
                            f"(budget {budget}); giving up on the pool")
                    try:
                        # a lost worker re-attaches to the store by name
                        # on its first lease, so respawn needs no re-seed
                        pool = wpool.respawn(self.workers)
                    except Exception as exc:
                        raise PoolCollapse(
                            f"cannot respawn worker pool: {exc}") from exc
                    continue
                # expire leases past their deadline: steal the blocks
                for fut, (unit, rec, deadline) in list(inflight.items()):
                    if t < deadline or unit.done:
                        continue
                    inflight[fut] = (unit, rec, math.inf)  # reap as late
                    rec.outcome = "expired"
                    rec.end_s = t
                    unit.steals += 1
                    sres.leases_expired += 1
                    sres.blocks_stolen += len(unit.blocks)
                    registry.inc("scheduler.leases_expired")
                    registry.inc("scheduler.blocks_stolen", len(unit.blocks))
                    tracer.event("scheduler.expire", category="scheduler",
                                 unit=unit.uid, attempt=rec.attempt)
                    fr.record("lease", "expire", unit=unit.uid,
                              attempt=rec.attempt)
                    retry(unit, rec, "lease expired", consume=False)
        finally:
            if owned:
                # ephemeral pool: release it with the run.  An external
                # (session-scoped) pool stays warm; any late futures on
                # it finish harmlessly -- their writes land in a store
                # the parent has already collected and unlinked, which
                # only this worker still maps
                wpool.shutdown()
