"""ASCII rendering of a scheduler run: the lease timeline.

``repro chaos`` prints this so a fault-injected run can be *read*: one
row per lease, a gantt lane showing when it ran, and a glyph for how it
ended.  Outcome glyphs::

    ##...#  ok        the lease came home with its result
    XX      crash     injected worker crash (process died, pool broke)
    kk      killed    collateral: shared the pool a crash took down
    dd      dropped   ran fine, result lost in flight (injected)
    ee      expired   deadline passed; blocks stolen by a fresh lease
    ll      late      result arrived after another lease already won
"""

from __future__ import annotations

from repro.runtime.scheduler.core import SchedulerResult

_GLYPH = {"ok": "#", "crash": "X", "killed": "k", "dropped": "d",
          "expired": "e", "late": "l", "pending": "?"}


def _fmt_blocks(blocks: tuple[int, ...]) -> str:
    if not blocks:
        return "-"
    lo, hi = blocks[0], blocks[-1]
    if list(blocks) == list(range(lo, hi + 1)):
        return str(lo) if lo == hi else f"{lo}-{hi}"
    return ",".join(str(b) for b in blocks)


def render_timeline(sres: SchedulerResult, width: int = 48) -> str:
    """The lease table + gantt for one scheduler run."""
    lines = [sres.summary()]
    if not sres.leases:
        return "\n".join(lines)
    span = max(max(r.end_s, r.start_s) for r in sres.leases) or 1e-9
    head = (f"  {'lease':>5} {'unit':>4} {'try':>3} {'blocks':>9} "
            f"{'fault':>5} {'outcome':>7} {'ms':>8}  timeline")
    lines += ["", head, "  " + "-" * (len(head) + width - 10)]
    for i, rec in enumerate(sres.leases):
        lo = int(rec.start_s / span * (width - 1))
        hi = max(lo, int(max(rec.end_s, rec.start_s) / span * (width - 1)))
        lane = [" "] * width
        glyph = _GLYPH.get(rec.outcome, "?")
        for x in range(lo, hi + 1):
            lane[x] = glyph
        dur_ms = max(0.0, rec.end_s - rec.start_s) * 1e3
        lines.append(
            f"  {i:>5} {rec.unit:>4} {rec.attempt:>3} "
            f"{_fmt_blocks(rec.blocks):>9} {rec.fault or '-':>5} "
            f"{rec.outcome:>7} {dur_ms:>8.1f}  |{''.join(lane)}|")
    lines += ["", "  glyphs: # ok   X crash   k killed   d dropped   "
                  "e expired   l late"]
    return "\n".join(lines)
