"""Persistent worker pools for the multiprocess engine.

Spawning a :class:`~concurrent.futures.ProcessPoolExecutor` per run was
one of the two fixed costs that made the multiprocess tier slower than
the interpreter on small-to-medium plans (the other -- shipping the
full plan with every lease -- is eliminated by
:mod:`repro.runtime.blockstore`).  :class:`WorkerPool` wraps an
executor with a *lazy, reusable* lifecycle:

- the executor is created on first :meth:`acquire` and reused by every
  later acquire that needs no more workers;
- :meth:`respawn` replaces a broken executor (a crashed worker poisons
  the whole pool) -- the scheduler calls it instead of building its own
  pool, so chaos respawn semantics are unchanged;
- :meth:`shutdown` releases the processes; the pool stays usable and
  simply respawns on the next acquire, so a closed
  :class:`~repro.api.Session` that runs again still works.

``use_pool`` scopes a pool over a region of code (the same innermost-
wins pattern as ``use_tracer`` / ``use_fault_plan``);
:class:`~repro.api.Session` scopes its own pool over every operation,
which is what makes the pool *session-scoped*: workers survive across
``Session.run()`` calls and keep their warm caches (attached shared-
memory segments, unpickled plans, compiled kernels).  With no ambient
pool the scheduler builds an ephemeral one per run -- exactly the old
behavior, which keeps pool-failure injection in tests working.

The executor class is resolved dynamically through
``concurrent.futures`` so tests can monkeypatch it.
"""

from __future__ import annotations

import concurrent.futures
from typing import Optional

from repro.ctxstack import ScopeStack


class WorkerPool:
    """A lazily created, reusable process pool.

    ``generation`` counts executor (re)creations -- a cheap way for
    tests (and the scheduler's observability) to tell reuse from
    respawn.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.generation = 0
        self._executor = None
        self._workers = 0

    @property
    def workers(self) -> int:
        """Worker slots of the live executor (0 when none is alive)."""
        return self._workers if self._executor is not None else 0

    def acquire(self, workers: int):
        """An executor with at least ``workers`` slots.

        Reuses the live executor when it is healthy and big enough;
        otherwise (first use, broken pool, or a larger plan) respawns.
        May raise whatever the executor constructor raises -- callers
        treat that as pool unavailability.
        """
        from repro.obs.metrics import current_registry

        ex = self._executor
        if (ex is not None and not getattr(ex, "_broken", False)
                and workers <= self._workers):
            current_registry().inc("engine.pool.reuses")
            return ex
        return self.respawn(workers)

    def respawn(self, workers: Optional[int] = None):
        """Discard any live executor and create a fresh one."""
        from repro.obs.flight import flight
        from repro.obs.metrics import current_registry

        workers = workers if workers is not None else max(1, self._workers)
        self._discard()
        # resolved dynamically so tests can monkeypatch the executor
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers)
        self._workers = workers
        self.generation += 1
        reg = current_registry()
        reg.inc("engine.pool.spawns")
        reg.set("engine.pool.workers", workers)
        flight().record("event", "pool.spawn", workers=workers,
                        generation=self.generation)
        return self._executor

    def _discard(self) -> None:
        ex, self._executor = self._executor, None
        if ex is not None:
            try:
                ex.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass

    def shutdown(self) -> None:
        """Release the worker processes (the pool itself stays usable:
        the next :meth:`acquire` simply respawns)."""
        from repro.obs.flight import flight

        if self._executor is not None:
            flight().record("event", "pool.shutdown",
                            generation=self.generation)
        self._discard()
        self._workers = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self._workers} workers" if self._executor else "idle"
        return f"WorkerPool({self.name or hex(id(self))}: {state}, " \
               f"gen {self.generation})"


_ACTIVE = ScopeStack()


def current_pool() -> Optional[WorkerPool]:
    """The innermost scoped pool on this thread, or None (schedulers
    then build an ephemeral pool per run)."""
    return _ACTIVE.top(None)


def use_pool(pool: WorkerPool):
    """Scope ``pool`` as the ambient worker pool for a region of code."""
    return _ACTIVE.scoped(pool)
