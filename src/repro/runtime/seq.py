"""The sequential interpreter: the golden model.

Executes a loop nest exactly as written -- iterations in lexicographic
order, statements in textual order, RHS reads before the LHS write --
over :class:`~repro.runtime.arrays.DataSpace` storage (or anything
read/write callables provide).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.lang.ast import ArrayRef, Assign, BinOp, Const, Expr, LoopNest, Name, UnaryOp
from repro.lang.space import IterationSpace
from repro.runtime.arrays import Coords, DataSpace

Reader = Callable[[str, Coords], float]
Writer = Callable[[str, Coords, float], None]


def eval_expr(expr: Expr, env: Mapping[str, int], scalars: Mapping[str, float],
              read: Reader) -> float:
    """Evaluate an expression given loop-index bindings and a read callback."""
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Name):
        if expr.ident in env:
            return float(env[expr.ident])
        if expr.ident in scalars:
            return float(scalars[expr.ident])
        raise KeyError(
            f"unbound name {expr.ident!r}: not a loop index and no scalar binding"
        )
    if isinstance(expr, UnaryOp):
        return -eval_expr(expr.operand, env, scalars, read)
    if isinstance(expr, BinOp):
        lv = eval_expr(expr.left, env, scalars, read)
        rv = eval_expr(expr.right, env, scalars, read)
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        return lv / rv
    if isinstance(expr, ArrayRef):
        coords = tuple(
            int(eval_expr(s, env, scalars, read)) for s in expr.subscripts
        )
        return read(expr.array, coords)
    raise TypeError(f"cannot evaluate {expr!r}")


def subscript_coords(ref: ArrayRef, env: Mapping[str, int]) -> Coords:
    """Resolve a reference's subscripts (affine, so no reads needed)."""
    def no_read(a: str, c: Coords) -> float:  # pragma: no cover - affine guard
        raise AssertionError("array read inside a subscript")

    return tuple(int(eval_expr(s, env, {}, no_read)) for s in ref.subscripts)


def execute_statement(stmt: Assign, env: Mapping[str, int],
                      scalars: Mapping[str, float],
                      read: Reader, write: Writer) -> None:
    value = eval_expr(stmt.rhs, env, scalars, read)
    coords = subscript_coords(stmt.lhs, env)
    write(stmt.lhs.array, coords, value)


def run_sequential(
    nest: LoopNest,
    arrays: dict[str, DataSpace],
    scalars: Optional[Mapping[str, float]] = None,
    space: Optional[IterationSpace] = None,
    backend: Optional[str] = None,
    options: Optional[object] = None,
) -> dict[str, DataSpace]:
    """Run the nest in place over ``arrays``; returns ``arrays``.

    ``backend`` picks the execution engine (default: the interpreter,
    or ``$REPRO_BACKEND``); every engine is bit-identical to the
    interpreter on the final arrays.  ``options`` is a
    :class:`repro.api.RunOptions` supplying a default backend.
    """
    # local import: the engine layer's interp backend calls back into
    # execute_statement here
    from repro.obs.trace import current_tracer
    from repro.runtime.engine import resolve_engine

    if options is not None:
        backend = backend or options.backend
    scalars = scalars or {}
    space = space or IterationSpace(nest)
    engine = resolve_engine(backend)
    with current_tracer().span("engine.run_nest", category="engine",
                               backend=engine.name,
                               nest=nest.name or "<anon>",
                               statements=len(nest.statements)):
        engine.run_nest(nest, arrays, scalars, space)
    return arrays
