"""Execution runtimes.

- :mod:`~repro.runtime.arrays`: :class:`DataSpace`, a numpy-backed
  array with arbitrary (possibly negative) index origins, sized
  automatically from the loop's access footprint;
- :mod:`~repro.runtime.seq`: the sequential interpreter -- the golden
  model every parallel execution is verified against;
- :mod:`~repro.runtime.parallel`: the parallel executor: places data
  blocks into simulated local memories, runs each iteration block on
  its processor with *strict* locality checking (a remote access
  raises), and timestamps writes for merging;
- :mod:`~repro.runtime.merge`: last-writer merge of replicated copies
  (the duplicate-data strategy's output-dependence semantics);
- :mod:`~repro.runtime.verify`: one-call end-to-end verification;
- :mod:`~repro.runtime.engine`: the pluggable execution-engine layer
  (interpreter / compiled kernels / vectorized / multiprocess), all
  bit-identical, selected with ``backend=`` on the entry points;
- :mod:`~repro.runtime.scheduler`: the dynamic, fault-tolerant block
  scheduler behind the multiprocess engine (leases, retries, chaos
  injection via :class:`FaultPlan` / ``$REPRO_CHAOS``);
- :mod:`~repro.runtime.blockstore`: the zero-copy shared-memory block
  store multiprocess leases execute against (by-descriptor payloads,
  seed/publish idempotence; ``REPRO_NO_SHM=1`` forces the legacy
  by-value copy-through path);
- :mod:`~repro.runtime.pool`: :class:`WorkerPool`, the reusable worker
  pool -- ephemeral per run by default, persistent across runs when a
  :class:`~repro.api.Session` (or :func:`use_pool`) scopes one.
"""

from repro.runtime.arrays import DataSpace, array_footprints, default_init, make_arrays
from repro.runtime.seq import run_sequential, eval_expr
from repro.runtime.parallel import ParallelResult, run_parallel
from repro.runtime.merge import merge_copies
from repro.runtime.verify import VerificationReport, cross_check_backends, verify_plan
from repro.runtime.machine_run import MachineRun, run_on_machine
from repro.runtime.engine import (
    available_backends,
    backend_names,
    get_engine,
    resolve_engine,
)
from repro.runtime.scheduler import (
    BlockScheduler,
    FaultPlan,
    SchedulerResult,
    current_fault_plan,
    use_fault_plan,
)
from repro.runtime.blockstore import (
    SharedBlockStore,
    StoreDescriptor,
    release_plan_segment,
    shm_available,
)
from repro.runtime.pool import WorkerPool, current_pool, use_pool

__all__ = [
    "DataSpace",
    "array_footprints",
    "default_init",
    "make_arrays",
    "run_sequential",
    "eval_expr",
    "ParallelResult",
    "run_parallel",
    "merge_copies",
    "VerificationReport",
    "cross_check_backends",
    "verify_plan",
    "MachineRun",
    "run_on_machine",
    "available_backends",
    "backend_names",
    "get_engine",
    "resolve_engine",
    "BlockScheduler",
    "FaultPlan",
    "SchedulerResult",
    "current_fault_plan",
    "use_fault_plan",
    "SharedBlockStore",
    "StoreDescriptor",
    "release_plan_segment",
    "shm_available",
    "WorkerPool",
    "current_pool",
    "use_pool",
]
