"""Optional-numpy shim for the runtime.

The functional runtime only *prefers* numpy: :class:`~repro.runtime.arrays.DataSpace`
uses an ``ndarray`` when one is available and falls back to :class:`PyGrid`
(a flat-list dense grid with the same tuple-indexing surface) otherwise, so
every backend except ``vectorized`` works on a numpy-free interpreter.

Set ``REPRO_NO_NUMPY=1`` to force the fallback even when numpy is
installed -- CI uses this (plus a real uninstall) to keep the numpy-absent
code paths exercised.  All helpers re-check :data:`np` at call time so
tests can monkeypatch ``numpy_compat.np = None`` and back.

The shared-memory block store is numpy-only (it is built on flat
ndarray views over ``multiprocessing.shared_memory`` segments), so on
the PyGrid fallback the multiprocess engine transparently keeps the
legacy by-value copy-through lease path -- same results, just with
pickled payloads instead of descriptors.
"""

from __future__ import annotations

import os
from typing import Optional


def _load_numpy():
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
        return None
    return numpy


#: The numpy module, or ``None`` when missing/disabled.  Mutable on purpose.
np = _load_numpy()


def have_numpy() -> bool:
    return np is not None


class PyGrid:
    """Dense float grid over ``shape`` backed by a flat Python list.

    Implements the small slice of the ``ndarray`` surface that
    :class:`~repro.runtime.arrays.DataSpace` and the compiled kernels
    use: tuple ``__getitem__``/``__setitem__`` (no slicing), ``shape``,
    ``copy`` and iteration-free bulk comparison helpers below.  Values
    are stored as Python floats, which carry the exact same IEEE-754
    doubles as ``float64`` -- results stay bit-identical to the numpy
    backing.
    """

    __slots__ = ("shape", "_strides", "_data")

    def __init__(self, shape: tuple[int, ...], fill: float = 0.0,
                 _data: Optional[list] = None):
        self.shape = tuple(int(s) for s in shape)
        strides = [1] * len(self.shape)
        for k in range(len(self.shape) - 2, -1, -1):
            strides[k] = strides[k + 1] * self.shape[k + 1]
        self._strides = tuple(strides)
        size = 1
        for s in self.shape:
            size *= s
        self._data = list(_data) if _data is not None else [float(fill)] * size

    def _flat(self, pos) -> int:
        if not isinstance(pos, tuple):
            pos = (pos,)
        if len(pos) != len(self.shape):
            raise IndexError(f"rank mismatch: {pos} into shape {self.shape}")
        out = 0
        for p, s, n in zip(pos, self._strides, self.shape):
            p = int(p)
            if not 0 <= p < n:
                raise IndexError(f"index {pos} outside shape {self.shape}")
            out += p * s
        return out

    def __getitem__(self, pos) -> float:
        return self._data[self._flat(pos)]

    def __setitem__(self, pos, value) -> None:
        self._data[self._flat(pos)] = float(value)

    def copy(self) -> "PyGrid":
        return PyGrid(self.shape, _data=self._data)

    def tolist(self) -> list:
        return list(self._data)


def full(shape: tuple[int, ...], fill: float = 0.0):
    """A float64 grid of ``shape``: ``ndarray`` with numpy, :class:`PyGrid` without."""
    if np is not None:
        return np.full(shape, fill, dtype=np.float64)
    return PyGrid(shape, fill)


def _flat_values(grid) -> list:
    if isinstance(grid, PyGrid):
        return grid.tolist()
    return [float(x) for x in grid.ravel()]


def array_equal(a, b) -> bool:
    """Exact elementwise equality across either backing representation."""
    if np is not None and not isinstance(a, PyGrid) and not isinstance(b, PyGrid):
        return bool(np.array_equal(a, b))
    if tuple(a.shape) != tuple(b.shape):
        return False
    return _flat_values(a) == _flat_values(b)


def allclose(a, b, rtol: float = 1e-05, atol: float = 1e-08) -> bool:
    """``numpy.allclose`` semantics for either backing representation."""
    if np is not None and not isinstance(a, PyGrid) and not isinstance(b, PyGrid):
        return bool(np.allclose(a, b, rtol=rtol, atol=atol))
    if tuple(a.shape) != tuple(b.shape):
        return False
    return all(abs(x - y) <= atol + rtol * abs(y)
               for x, y in zip(_flat_values(a), _flat_values(b)))
