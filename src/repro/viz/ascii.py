"""Grid renderers for 2-D data spaces and iteration spaces.

Conventions follow the paper's figures: the first coordinate grows
rightwards along the horizontal axis, the second upwards; each cell
shows the owning block's index (``.`` = element unused / iteration
absent).  Elements owned by several blocks (duplicate data) render as
``*`` with the owner list available separately.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.partition import DataBlock, IterationBlock

Coords = tuple[int, ...]


def _cell(owners: list[int]) -> str:
    if not owners:
        return "."
    if len(owners) == 1:
        v = owners[0]
        return str(v) if v < 36 else "#"
    return "*"


def _axis_ranges(points: Sequence[Coords]) -> tuple[range, range]:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return range(min(xs), max(xs) + 1), range(min(ys), max(ys) + 1)


def render_data_space(elements: Sequence[Coords], title: str = "") -> str:
    """Mark used elements of a 2-D data space with ``o``."""
    if not elements:
        return f"{title}\n(empty)"
    used = set(elements)
    xr, yr = _axis_ranges(list(used))
    lines = [title] if title else []
    for y in reversed(yr):
        row = " ".join("o" if (x, y) in used else "." for x in xr)
        lines.append(f"{y:>3} | {row}")
    lines.append("    +" + "-" * (2 * len(xr)))
    lines.append("      " + " ".join(f"{x % 10}" for x in xr))
    return "\n".join(lines)


def render_data_partition(dblocks: Sequence[DataBlock], title: str = "") -> str:
    """Render block ownership of every element of a 2-D array."""
    owners: dict[Coords, list[int]] = {}
    for db in dblocks:
        for e in db.elements:
            owners.setdefault(e, []).append(db.block_index)
    if not owners:
        return f"{title}\n(empty)"
    for v in owners.values():
        v.sort()
    xr, yr = _axis_ranges(list(owners))
    lines = [title] if title else []
    for y in reversed(yr):
        row = " ".join(_cell(owners.get((x, y), [])) for x in xr)
        lines.append(f"{y:>3} | {row}")
    lines.append("    +" + "-" * (2 * len(xr)))
    lines.append("      " + " ".join(f"{x % 10}" for x in xr))
    return "\n".join(lines)


def render_heatmap(counts: dict[Coords, int], title: str = "") -> str:
    """Render per-element counts of a 2-D space as a density grid.

    Cells show the count itself for 1..9, ``#`` for 10 or more and
    ``.`` for zero/untouched -- the same glyph conventions as the
    partition grids.  Used by the communication-audit dashboard for
    per-array access heatmaps.
    """
    used = {c: n for c, n in counts.items() if n}
    if not used:
        return f"{title}\n(empty)"
    xr, yr = _axis_ranges(list(used))
    lines = [title] if title else []
    for y in reversed(yr):
        cells = []
        for x in xr:
            n = used.get((x, y), 0)
            cells.append("." if n == 0 else str(n) if n < 10 else "#")
        lines.append(f"{y:>3} | {' '.join(cells)}")
    lines.append("    +" + "-" * (2 * len(xr)))
    lines.append("      " + " ".join(f"{x % 10}" for x in xr))
    return "\n".join(lines)


def render_bar(frac: float, width: int = 24, fill: str = "#",
               empty: str = ".") -> str:
    """A fixed-width horizontal gauge: ``render_bar(0.5, 8)`` ->
    ``"####...."``.  Fractions are clamped to [0, 1]; used by the
    ``repro top`` dashboard and the audit/SLO gauges."""
    frac = 0.0 if frac != frac else min(1.0, max(0.0, frac))  # NaN -> 0
    n = round(frac * width)
    return fill * n + empty * (width - n)


def render_iteration_partition(blocks: Sequence[IterationBlock],
                               title: str = "",
                               mark: Optional[dict[Coords, str]] = None) -> str:
    """Render a 2-D iteration partition; ``mark`` overrides cell glyphs
    (e.g. the paper's Fig. 9 dotted points for S2-only iterations)."""
    owner: dict[Coords, int] = {}
    for b in blocks:
        for it in b.iterations:
            owner[it] = b.index
    if not owner:
        return f"{title}\n(empty)"
    xr, yr = _axis_ranges(list(owner))
    lines = [title] if title else []
    for y in reversed(yr):
        cells = []
        for x in xr:
            if (x, y) not in owner:
                cells.append(".")
            elif mark and (x, y) in mark:
                cells.append(mark[(x, y)])
            else:
                cells.append(_cell([owner[(x, y)]]))
        lines.append(f"{y:>3} | {' '.join(cells)}")
    lines.append("    +" + "-" * (2 * len(xr)))
    lines.append("      " + " ".join(f"{x % 10}" for x in xr))
    return "\n".join(lines)
