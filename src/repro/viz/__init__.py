"""ASCII rendering of partitions -- the data behind Figures 1-10.

The paper's figures are diagrams of data spaces, partitioned data/
iteration blocks, reference graphs and the processor assignment.  Their
information content is the block structure, which we compute; these
helpers render it as deterministic text artifacts that the figure
benches regenerate and the tests pin down.
"""

from repro.viz.ascii import (
    render_data_partition,
    render_data_space,
    render_iteration_partition,
)
from repro.viz.figures import (
    fig01_l1_dataspaces,
    fig02_l1_data_partition,
    fig03_l1_iteration_partition,
    fig04_l2_data_partition,
    fig05_l2_iteration_partition,
    fig07_l3_reference_graph,
    fig08_l3_data_partition,
    fig09_l3_iteration_partition,
    fig10_l4_processor_assignment,
)

__all__ = [
    "render_data_space",
    "render_data_partition",
    "render_iteration_partition",
    "fig01_l1_dataspaces",
    "fig02_l1_data_partition",
    "fig03_l1_iteration_partition",
    "fig04_l2_data_partition",
    "fig05_l2_iteration_partition",
    "fig07_l3_reference_graph",
    "fig08_l3_data_partition",
    "fig09_l3_iteration_partition",
    "fig10_l4_processor_assignment",
]
