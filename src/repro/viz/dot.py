"""Graphviz DOT export for data reference graphs (Figs. 6-7 as artifacts).

Hand-rolled DOT writer (no graphviz dependency): write vertices in the
paper's two-row layout (writes on top, reads below) with dependence
kinds as edge labels and styles.
"""

from __future__ import annotations

from repro.analysis.refgraph import DataReferenceGraph
from repro.lang.printer import expr_to_source

_EDGE_STYLE = {
    "flow": 'color="black" style="solid"',
    "anti": 'color="black" style="dashed"',
    "output": 'color="gray40" style="bold"',
    "input": 'color="gray60" style="dotted"',
}

_KIND_SYMBOL = {
    "flow": "δf",
    "anti": "δa",
    "output": "δo",
    "input": "δi",
}


def _vertex_label(graph: DataReferenceGraph, ref) -> str:
    subs = ", ".join(expr_to_source(s) for s in ref.ast.subscripts)
    return f"{graph.vertex_name(ref)}: {ref.array}[{subs}]"


def to_dot(graph: DataReferenceGraph, title: str = "") -> str:
    """Render ``G^A`` as a DOT digraph string."""
    lines = [f'digraph "{title or "G_" + graph.array}" {{',
             "  rankdir=TB;",
             '  node [shape=box, fontname="monospace"];']
    if graph.writes:
        lines.append("  { rank=source; "
                     + "; ".join(f'"{graph.vertex_name(w)}"'
                                 for w in graph.writes) + "; }")
    if graph.reads:
        lines.append("  { rank=sink; "
                     + "; ".join(f'"{graph.vertex_name(r)}"'
                                 for r in graph.reads) + "; }")
    for ref in list(graph.writes) + list(graph.reads):
        name = graph.vertex_name(ref)
        lines.append(f'  "{name}" [label="{_vertex_label(graph, ref)}"];')
    for dep in graph.edges:
        src = graph.vertex_name(dep.src)
        dst = graph.vertex_name(dep.dst)
        kind = dep.kind.value
        t = tuple(int(x) for x in dep.witness)
        lines.append(
            f'  "{src}" -> "{dst}" '
            f'[label="{_KIND_SYMBOL[kind]} t={t}", {_EDGE_STYLE[kind]}];'
        )
    lines.append("}")
    return "\n".join(lines)
