"""Regeneration of the paper's figures as structured data + text.

Each ``figNN_*`` function recomputes the figure's content from scratch
(analysis -> partition -> rendering) and returns a :class:`FigureArtifact`
with both the machine-checkable structure and a printable rendering.
Fig. 6 (the generic reference-graph schema) is a definition rather than
a result; Fig. 7 instantiates it for L3 and is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis import (
    analyze_redundancy,
    build_reference_graph,
    data_referenced_vectors,
    extract_references,
)
from repro.core import Strategy, build_plan
from repro.lang import catalog
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.transform import to_pseudocode, transform_nest
from repro.viz.ascii import (
    render_data_partition,
    render_data_space,
    render_iteration_partition,
)


@dataclass
class FigureArtifact:
    """One regenerated figure."""

    figure: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"=== {self.figure}: {self.title} ===\n{self.text}"


def fig01_l1_dataspaces(n: int = 4) -> FigureArtifact:
    """Fig. 1: data spaces and data-referenced vectors of A, B, C in L1."""
    model = extract_references(catalog.l1(n))
    sections = []
    drvs = {}
    for name in ("A", "B", "C"):
        info = model.arrays[name]
        used = sorted({
            info.element_at(it, ref.offset)
            for it in model.space.iterate() for ref in info.references
        })
        sections.append(render_data_space(used, title=f"array {name} (used elements)"))
        drvs[name] = [tuple(int(x) for x in d.vector)
                      for d in data_referenced_vectors(info)]
        sections.append(f"data-referenced vectors of {name}: {drvs[name]}")
    return FigureArtifact(
        figure="Fig. 1", title="data spaces and data-referenced vectors (L1)",
        text="\n".join(sections), data={"drvs": drvs},
    )


def _l1_plan(n: int = 4):
    return build_plan(catalog.l1(n), Strategy.NONDUPLICATE)


def fig02_l1_data_partition(n: int = 4) -> FigureArtifact:
    """Fig. 2: data blocks of A, B, C in L1 (7 blocks each)."""
    plan = _l1_plan(n)
    sections = []
    counts = {}
    for name in ("A", "B", "C"):
        sections.append(render_data_partition(
            plan.data_blocks[name], title=f"array {name}: element -> block"))
        counts[name] = [len(db) for db in plan.data_blocks[name]]
    return FigureArtifact(
        figure="Fig. 2", title="data partitions of L1",
        text="\n".join(sections),
        data={"num_blocks": plan.num_blocks, "block_sizes": counts},
    )


def fig03_l1_iteration_partition(n: int = 4) -> FigureArtifact:
    """Fig. 3: the 7 iteration blocks of L1 with base points."""
    plan = _l1_plan(n)
    text = render_iteration_partition(plan.blocks, title="iteration -> block")
    return FigureArtifact(
        figure="Fig. 3", title="iteration partition of L1",
        text=text,
        data={
            "base_points": [b.base_point for b in plan.blocks],
            "block_sizes": [len(b) for b in plan.blocks],
        },
    )


def fig04_l2_data_partition(n: int = 4) -> FigureArtifact:
    """Fig. 4: data partitions of A and B in L2 under duplicate data."""
    plan = build_plan(catalog.l2(n), Strategy.DUPLICATE)
    sections = []
    for name in ("A", "B"):
        sections.append(render_data_partition(
            plan.data_blocks[name], title=f"array {name} (* = replicated)"))
    repl = {name: plan.replication_factor(name) for name in ("A", "B")}
    return FigureArtifact(
        figure="Fig. 4", title="data partitions of L2 (duplicate strategy)",
        text="\n".join(sections),
        data={"num_blocks": plan.num_blocks, "replication": repl},
    )


def fig05_l2_iteration_partition(n: int = 4) -> FigureArtifact:
    """Fig. 5: every L2 iteration is its own block."""
    plan = build_plan(catalog.l2(n), Strategy.DUPLICATE)
    text = render_iteration_partition(plan.blocks, title="iteration -> block")
    return FigureArtifact(
        figure="Fig. 5", title="iteration partition of L2 (duplicate strategy)",
        text=text, data={"num_blocks": plan.num_blocks},
    )


def fig07_l3_reference_graph(n: int = 4) -> FigureArtifact:
    """Fig. 7: the data reference graph G^A of loop L3."""
    model = extract_references(catalog.l3(n))
    g = build_reference_graph(model, "A")
    edges = sorted(g.edge_names())
    lines = [f"vertices: W = {[g.vertex_name(w) for w in g.writes]}, "
             f"R = {[g.vertex_name(r) for r in g.reads]}"]
    lines += [f"  {s} -> {d}  [{k}]" for s, d, k in edges]
    return FigureArtifact(
        figure="Fig. 7", title="data reference graph of L3",
        text="\n".join(lines), data={"edges": edges},
    )


def fig08_l3_data_partition(n: int = 4) -> FigureArtifact:
    """Fig. 8: data blocks of A in L3 under the minimal duplicate space."""
    plan = build_plan(catalog.l3(n), Strategy.DUPLICATE, eliminate_redundant=True)
    text = render_data_partition(plan.data_blocks["A"],
                                 title="array A: element -> block (live accesses)")
    return FigureArtifact(
        figure="Fig. 8", title="data partition of L3 (minimal, duplicate)",
        text=text, data={"num_blocks": plan.num_blocks},
    )


def fig09_l3_iteration_partition(n: int = 4) -> FigureArtifact:
    """Fig. 9: L3 iteration blocks; S2-only iterations shown as ':'."""
    plan = build_plan(catalog.l3(n), Strategy.DUPLICATE, eliminate_redundant=True)
    red = plan.breakdown.redundancy
    assert red is not None
    mark = {}
    for it in plan.model.space.iterate():
        s1 = red.is_live(0, it)
        if not s1:
            mark[it] = ":"  # only S2 executes here (paper's dotted points)
    text = render_iteration_partition(plan.blocks, title="iteration -> block "
                                      "(':' = S2 only)", mark=mark)
    n_s1 = sorted(red.n_set(0))
    return FigureArtifact(
        figure="Fig. 9", title="iteration partition of L3 (minimal, duplicate)",
        text=text,
        data={"num_blocks": plan.num_blocks, "N_S1": n_s1},
    )


def fig10_l4_processor_assignment(n: int = 4, p: int = 4) -> FigureArtifact:
    """Fig. 10: cyclic assignment of L4' forall points on a 2x2 grid."""
    nest = catalog.l4(n)
    plan = build_plan(nest, Strategy.NONDUPLICATE)
    tnest = transform_nest(nest, plan.psi)
    grid = shape_grid(p, tnest.k)
    assignment = assign_blocks(tnest, grid)
    stats = workload_stats(assignment)
    lines = [to_pseudocode(tnest), "", "forall-point weights (iterations/block):"]
    for pt in sorted(assignment.weights):
        lines.append(f"  {pt}: {assignment.weights[pt]} -> PE{assignment.owner(pt)}")
    lines.append(stats.summary())
    return FigureArtifact(
        figure="Fig. 10", title="processor assignment of L4'",
        text="\n".join(lines),
        data={"grid": grid.dims, "loads": stats.loads,
              "imbalance": stats.imbalance},
    )
