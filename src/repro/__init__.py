"""repro: communication-free data allocation for parallelizing compilers.

A complete, from-scratch reproduction of

    Tzung-Shi Chen and Jang-Ping Sheu,
    "Communication-Free Data Allocation Techniques for Parallelizing
    Compilers on Multicomputers",
    IEEE Trans. Parallel and Distributed Systems 5(9), 1994
    (conference version ICPP 1993).

Quickstart::

    from repro import parse, build_plan, Strategy, verify_plan

    nest = parse('''
        for i = 1 to 4 {
          for j = 1 to 4 {
            S1: A[2*i, j] = C[i, j] * 7;
            S2: B[j, i + 1] = A[2*i - 2, j - 1] + C[i - 1, j - 1];
          }
        }
    ''')
    plan = build_plan(nest, Strategy.NONDUPLICATE)
    print(plan.summary())              # Psi = span{(1,1)}, 7 blocks
    verify_plan(plan).raise_on_failure()   # parallel == sequential, 0 messages

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-reproduction record.
"""

from repro.api import RunOptions, Session
from repro.analysis import (
    analyze_redundancy,
    build_reference_graph,
    data_referenced_vectors,
    extract_references,
    is_fully_duplicable,
)
from repro.baseline import hyperplane_partition
from repro.core import (
    PartitionPlan,
    Strategy,
    build_plan,
    iteration_partition,
    partitioning_space,
)
from repro.lang import catalog, parse, to_source
from repro.machine import CostModel, Mesh2D, Multicomputer, TRANSPUTER
from repro.mapping import assign_blocks, shape_grid, workload_stats
from repro.perf import run_study, table1_rows, table2_rows
from repro.pipeline import (
    PipelineConfig,
    PipelineContext,
    PassManager,
    default_manager,
    run_pipeline,
)
from repro.runtime import make_arrays, run_parallel, run_sequential, verify_plan
from repro.transform import compile_nest, to_pseudocode, transform_nest

__version__ = "1.0.0"

__all__ = [
    "Session",
    "RunOptions",
    "parse",
    "to_source",
    "catalog",
    "extract_references",
    "data_referenced_vectors",
    "analyze_redundancy",
    "build_reference_graph",
    "is_fully_duplicable",
    "Strategy",
    "PartitionPlan",
    "build_plan",
    "partitioning_space",
    "iteration_partition",
    "transform_nest",
    "to_pseudocode",
    "compile_nest",
    "shape_grid",
    "assign_blocks",
    "workload_stats",
    "Multicomputer",
    "Mesh2D",
    "CostModel",
    "TRANSPUTER",
    "make_arrays",
    "run_sequential",
    "run_parallel",
    "verify_plan",
    "hyperplane_partition",
    "run_study",
    "table1_rows",
    "table2_rows",
    "run_pipeline",
    "PipelineConfig",
    "PipelineContext",
    "PassManager",
    "default_manager",
    "__version__",
]
