"""Column-style Hermite normal form.

``hermite_normal_form(A)`` returns ``(H, U)`` with ``H = A @ U``, ``U``
unimodular, and ``H`` in column HNF: zero columns last, each nonzero
column's pivot (first nonzero entry, positive) strictly lower than the
previous column's, and entries right of a pivot reduced modulo it.

Used to put integer lattice bases into canonical form (two bases span
the same lattice iff their HNFs agree), complementing the Smith normal
form used for solvability.
"""

from __future__ import annotations

from repro.ratlinalg.matrix import RatMat


def hermite_normal_form(m: RatMat) -> tuple[RatMat, RatMat]:
    """Column HNF of an integer matrix; see module docstring."""
    if not m.is_integral():
        raise ValueError("Hermite normal form requires an integer matrix")
    nrows, ncols = m.shape
    a = [[int(x) for x in row] for row in m.rows()]
    u = [[int(i == j) for j in range(ncols)] for i in range(ncols)]

    def swap_cols(i, j):
        for row in a:
            row[i], row[j] = row[j], row[i]
        for row in u:
            row[i], row[j] = row[j], row[i]

    def add_col(dst, src, k):
        for row in a:
            row[dst] += k * row[src]
        for row in u:
            row[dst] += k * row[src]

    def negate_col(j):
        for row in a:
            row[j] = -row[j]
        for row in u:
            row[j] = -row[j]

    col = 0
    for row_idx in range(nrows):
        if col == ncols:
            break
        # find a column (>= col) with a nonzero entry in this row; reduce
        # all such columns against each other gcd-style.
        while True:
            nz = [j for j in range(col, ncols) if a[row_idx][j] != 0]
            if not nz:
                break
            jmin = min(nz, key=lambda j: abs(a[row_idx][j]))
            if jmin != col:
                swap_cols(jmin, col)
            progressed = False
            for j in range(col + 1, ncols):
                if a[row_idx][j] != 0:
                    q = a[row_idx][j] // a[row_idx][col]
                    add_col(j, col, -q)
                    progressed = True
            if not progressed:
                break
        if a[row_idx][col] == 0:
            continue
        if a[row_idx][col] < 0:
            negate_col(col)
        # reduce entries to the LEFT of the pivot column in this row
        # (column HNF convention: previous pivot columns' entries in this
        # row reduced modulo the pivot)
        for j in range(col):
            q = a[row_idx][j] // a[row_idx][col]
            if q:
                add_col(j, col, -q)
        col += 1

    return RatMat(a), RatMat(u)


def lattice_canonical_basis(vectors) -> list:
    """Canonical basis of the integer lattice spanned by ``vectors``.

    Vectors are the *rows*; the result is the nonzero columns of the
    column-HNF of their transpose, returned as row vectors.  Two
    generating sets span the same lattice iff their canonical bases are
    equal.
    """
    from repro.ratlinalg.matrix import RatVec

    vecs = [v if isinstance(v, RatVec) else RatVec(v) for v in vectors]
    vecs = [v for v in vecs if not v.is_zero()]
    if not vecs:
        return []
    mat = RatMat(vecs).T  # columns are generators
    h, _u = hermite_normal_form(mat)
    out = []
    for j in range(h.ncols):
        colv = h.col(j)
        if not colv.is_zero():
            out.append(colv)
    return out
