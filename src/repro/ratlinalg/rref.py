"""Reduced row echelon form, rank, rational nullspaces, integer echelon.

These are the workhorses behind ``Ker(H)`` (Definition 4) and the
kernel-basis/pivot machinery of the program transformation (Section IV).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.ratlinalg.matrix import RatMat, RatVec


def rref(m: RatMat) -> tuple[RatMat, list[int]]:
    """Reduced row echelon form of ``m``.

    Returns ``(R, pivots)`` where ``R`` is the RREF and ``pivots`` lists
    the pivot column of each nonzero row (in row order).
    """
    rows = [list(r) for r in m.rows()]
    nrows, ncols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(ncols):
        piv = next((i for i in range(r, nrows) if rows[i][c] != 0), None)
        if piv is None:
            continue
        rows[r], rows[piv] = rows[piv], rows[r]
        inv = 1 / rows[r][c]
        rows[r] = [x * inv for x in rows[r]]
        for i in range(nrows):
            if i != r and rows[i][c] != 0:
                f = rows[i][c]
                rows[i] = [x - f * y for x, y in zip(rows[i], rows[r])]
        pivots.append(c)
        r += 1
        if r == nrows:
            break
    return RatMat(rows), pivots


def rank(m: RatMat) -> int:
    """Rank of ``m`` over the rationals."""
    _, pivots = rref(m)
    return len(pivots)


def nullspace(m: RatMat) -> list[RatVec]:
    """A basis of ``Ker(m) = {x : m x = 0}`` over the rationals.

    Each basis vector is scaled primitive (integral with gcd 1), which
    matches how the paper writes kernel bases (e.g. ``Ker(H_A) =
    span({(1,-1)})`` in Example 2).  Returns ``[]`` for a trivial
    kernel.
    """
    R, pivots = rref(m)
    ncols = m.ncols
    free = [c for c in range(ncols) if c not in pivots]
    basis: list[RatVec] = []
    for f in free:
        v = [Fraction(0)] * ncols
        v[f] = Fraction(1)
        for row_idx, p in enumerate(pivots):
            v[p] = -R[row_idx, f]
        basis.append(RatVec(v).primitive())
    return basis


def row_echelon_int(rows: Sequence[RatVec]) -> tuple[list[RatVec], list[int], list[int]]:
    """Row echelon form by elementary row operations, tracking provenance.

    This implements the Section-IV step: given the kernel basis
    ``Q = {a_1, ..., a_k}``, derive the echelon rows ``a'_j`` whose first
    nonzero positions are ``y_1 < y_2 < ... < y_k``, together with the
    permutation ``sigma``: ``a'_j`` is *derived from* ``a_{sigma^{-1}(j)}``.

    Returns ``(echelon_rows, pivot_cols, origin)`` where ``origin[j]``
    is the index (into the input) of the original row the ``j``-th
    echelon row was derived from -- i.e. ``origin[j] = sigma^{-1}(j+1)-1``
    in the paper's 1-based notation.

    The provenance convention mirrors the paper's Example 4: the row
    that *supplies the pivot* at each elimination step is the original
    row assigned to that pivot position, so the transformation (1) uses
    the original (unreduced) vectors ``a_{sigma^{-1}(j)}``.
    """
    work: list[tuple[list[Fraction], int]] = [
        (list(r), idx) for idx, r in enumerate(rows)
    ]
    if not work:
        return [], [], []
    ncols = len(work[0][0])
    ech: list[tuple[list[Fraction], int]] = []
    r = 0
    for c in range(ncols):
        piv = next((i for i in range(r, len(work)) if work[i][0][c] != 0), None)
        if piv is None:
            continue
        work[r], work[piv] = work[piv], work[r]
        pivot_row, pivot_origin = work[r]
        for i in range(r + 1, len(work)):
            row_i, orig_i = work[i]
            if row_i[c] != 0:
                f = row_i[c] / pivot_row[c]
                work[i] = ([x - f * y for x, y in zip(row_i, pivot_row)], orig_i)
        ech.append((pivot_row, pivot_origin))
        r += 1
        if r == len(work):
            break
    echelon_rows = [RatVec(row) for row, _ in ech]
    pivot_cols = [next(j for j, x in enumerate(row) if x != 0) for row, _ in ech]
    origin = [orig for _, orig in ech]
    return echelon_rows, pivot_cols, origin
