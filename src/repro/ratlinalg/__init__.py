"""Exact rational linear algebra substrate.

Everything the partitioning analysis needs is decided *exactly* over the
rationals (``fractions.Fraction``) or the integers:

- :class:`~repro.ratlinalg.matrix.RatMat` -- dense rational matrices;
- :func:`~repro.ratlinalg.rref.rref` -- reduced row echelon form;
- :func:`~repro.ratlinalg.rref.nullspace` -- rational kernel bases;
- :func:`~repro.ratlinalg.solve.solve_particular` -- one rational
  solution of ``A x = b`` (or ``None``);
- :func:`~repro.ratlinalg.smith.smith_normal_form` -- Smith normal form
  with unimodular transforms, used to decide *integer* solvability of
  ``H t = r`` (Definition 4, condition 2 of the paper);
- :class:`~repro.ratlinalg.lattice.IntLattice` -- integer solution
  lattices and bounded enumeration;
- :class:`~repro.ratlinalg.span.Subspace` -- spans, membership, unions,
  orthogonal complements and projections (the paper's ``span``/``Ker``);
- :mod:`~repro.ratlinalg.fm` -- Fourier-Motzkin elimination for the
  loop-bound computation of Section IV.

The module is pure Python on purpose: the matrices involved are tiny
(``n`` = loop depth, ``d`` = array rank, both <= ~6) and exactness
matters far more than raw speed here.  The performance-sensitive parts
of the library (the simulator and the interpreters) use numpy instead.
"""

from repro.ratlinalg.matrix import RatMat, RatVec, as_fraction, frac_gcd, vec_gcd
from repro.ratlinalg.rref import rref, rank, nullspace, row_echelon_int
from repro.ratlinalg.solve import solve_particular, solve_full
from repro.ratlinalg.smith import smith_normal_form, solve_diophantine, DiophantineSolution
from repro.ratlinalg.lattice import IntLattice, integer_kernel_basis
from repro.ratlinalg.hermite import hermite_normal_form, lattice_canonical_basis
from repro.ratlinalg.span import Subspace
from repro.ratlinalg.fm import Ineq, FMSystem, eliminate, bounds_for_order, LoopBound

__all__ = [
    "RatMat",
    "RatVec",
    "as_fraction",
    "frac_gcd",
    "vec_gcd",
    "rref",
    "rank",
    "nullspace",
    "row_echelon_int",
    "solve_particular",
    "solve_full",
    "smith_normal_form",
    "solve_diophantine",
    "DiophantineSolution",
    "IntLattice",
    "integer_kernel_basis",
    "hermite_normal_form",
    "lattice_canonical_basis",
    "Subspace",
    "Ineq",
    "FMSystem",
    "eliminate",
    "bounds_for_order",
    "LoopBound",
]
