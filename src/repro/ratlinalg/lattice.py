"""Integer lattices and bounded lattice-point enumeration.

Condition (2) of Definition 4 needs: "does the integer solution set
``t0 + L`` of ``H t = r`` contain a vector ``t'`` that is a difference
of two iterations ``i_2 - i_1`` with ``i_1, i_2 in I^n``?"  For a
rectangular iteration space ``1 <= I_j <= u_j`` the difference set is
the box ``[-(u_j - 1), u_j - 1]^n``, so the question reduces to finding
a lattice point inside a box -- solved here by exact coefficient-range
enumeration.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor
from typing import Iterator, Optional, Sequence

from repro.ratlinalg.matrix import RatMat, RatVec
from repro.ratlinalg.smith import smith_normal_form


def integer_kernel_basis(m: RatMat) -> list[RatVec]:
    """Basis of the integer lattice ``Ker(m) ∩ Z^n`` for integral ``m``.

    These are the last ``n - rank`` columns of the Smith-normal-form
    ``V`` matrix; they span every integer solution of ``m t = 0``.
    """
    _, d, v = smith_normal_form(m)
    ncols = m.ncols
    rank = sum(1 for i in range(min(d.nrows, d.ncols)) if d[i, i] != 0)
    return [v.col(j) for j in range(rank, ncols)]


class IntLattice:
    """An affine integer lattice ``offset + Z b_1 + ... + Z b_k``.

    ``offset`` and each ``b_i`` are integer vectors of the same length.
    The basis vectors must be linearly independent.
    """

    def __init__(self, basis: Sequence[RatVec], offset: RatVec):
        if not offset.is_integral():
            raise ValueError("lattice offset must be integral")
        for b in basis:
            if not b.is_integral():
                raise ValueError("lattice basis vectors must be integral")
            if len(b) != len(offset):
                raise ValueError("dimension mismatch in lattice basis")
        self.basis = tuple(basis)
        self.offset = offset
        self.ambient_dim = len(offset)
        self.rank = len(self.basis)
        if self.rank:
            bt = RatMat(self.basis)          # k x n, rows are basis
            gram = bt @ bt.T                 # k x k
            try:
                self._pseudo = gram.inverse() @ bt   # maps t-offset -> coeffs
            except ZeroDivisionError as exc:
                raise ValueError("lattice basis is linearly dependent") from exc
        else:
            self._pseudo = None

    # ------------------------------------------------------------------
    def coefficients_of(self, point: RatVec) -> Optional[RatVec]:
        """Integer coefficients ``c`` with ``point = offset + B^T c``, or ``None``.

        ``None`` means the point is not on the lattice (either off the
        affine span or at non-integer coefficients).
        """
        delta = point - self.offset
        if self.rank == 0:
            return RatVec([]) if delta.is_zero() else None
        c = self._pseudo @ delta
        if not c.is_integral():
            return None
        recon = self.offset + sum(
            (b * ci for b, ci in zip(self.basis, c)), RatVec.zero(self.ambient_dim)
        )
        return c if recon == point else None

    def __contains__(self, point) -> bool:
        if not isinstance(point, RatVec):
            point = RatVec(point)
        if not point.is_integral():
            return False
        return self.coefficients_of(point) is not None

    # ------------------------------------------------------------------
    def _coefficient_box(self, lo: RatVec, hi: RatVec) -> Optional[list[tuple[int, int]]]:
        """Interval-arithmetic bounds on coefficients of lattice points in [lo, hi].

        Complete: every lattice point inside the box has coefficients
        within the returned ranges (the ranges may include spurious
        candidates, filtered later).  Returns ``None`` for an empty
        coefficient range.
        """
        ranges: list[tuple[int, int]] = []
        for row_idx in range(self.rank):
            p_row = self._pseudo.row(row_idx)
            c_lo = Fraction(0)
            c_hi = Fraction(0)
            for j in range(self.ambient_dim):
                coef = p_row[j]
                a = lo[j] - self.offset[j]
                b = hi[j] - self.offset[j]
                if coef >= 0:
                    c_lo += coef * a
                    c_hi += coef * b
                else:
                    c_lo += coef * b
                    c_hi += coef * a
            lo_i, hi_i = ceil(c_lo), floor(c_hi)
            if lo_i > hi_i:
                return None
            ranges.append((lo_i, hi_i))
        return ranges

    def points_in_box(self, lo: Sequence[int], hi: Sequence[int]) -> Iterator[RatVec]:
        """Yield every lattice point ``t`` with ``lo <= t <= hi`` componentwise."""
        lo_v = lo if isinstance(lo, RatVec) else RatVec(lo)
        hi_v = hi if isinstance(hi, RatVec) else RatVec(hi)
        if len(lo_v) != self.ambient_dim or len(hi_v) != self.ambient_dim:
            raise ValueError("box dimension mismatch")

        def in_box(t: RatVec) -> bool:
            return all(lo_v[j] <= t[j] <= hi_v[j] for j in range(self.ambient_dim))

        if self.rank == 0:
            if in_box(self.offset):
                yield self.offset
            return
        ranges = self._coefficient_box(lo_v, hi_v)
        if ranges is None:
            return

        def rec(idx: int, acc: RatVec) -> Iterator[RatVec]:
            if idx == self.rank:
                if in_box(acc):
                    yield acc
                return
            lo_i, hi_i = ranges[idx]
            for c in range(lo_i, hi_i + 1):
                yield from rec(idx + 1, acc + self.basis[idx] * c)

        yield from rec(0, self.offset)

    def any_point_in_box(self, lo: Sequence[int], hi: Sequence[int]) -> Optional[RatVec]:
        """First lattice point inside the box, or ``None``."""
        return next(self.points_in_box(lo, hi), None)

    def any_point_in_box_where(self, lo, hi, predicate) -> Optional[RatVec]:
        """First lattice point inside the box satisfying ``predicate``."""
        for t in self.points_in_box(lo, hi):
            if predicate(t):
                return t
        return None
