"""Fourier-Motzkin elimination and loop-bound synthesis.

Section IV of the paper transforms a partitioned nest into

    forall I'_{y_1} = l'_1 to u'_1
      ...
        for I_{z_g} = l'_n to u'_n

where every bound is a ``max``/``min`` of affine expressions in the
enclosing loop variables (the paper defers to the loop-bound method of
Wolf & Lam [22]).  We synthesize those bounds with exact Fourier-Motzkin
elimination: eliminate the innermost variables one by one; the
inequalities mentioning a variable at its elimination step provide its
lower/upper bound expressions.

Rational FM is exact over the reals; for integer loops we apply
ceil/floor tightening, which can only *over*-approximate the projection
(possibly-empty inner loops execute zero iterations) and never loses an
integer point -- i.e. every original iteration is still enumerated
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor
from typing import Iterable, Optional, Sequence

from repro.ratlinalg.matrix import RatVec, as_fraction, vec_gcd


@dataclass(frozen=True)
class Ineq:
    """The affine inequality ``sum_j coeffs[j] * x_j + const >= 0``."""

    coeffs: tuple[Fraction, ...]
    const: Fraction

    @staticmethod
    def make(coeffs: Sequence, const) -> "Ineq":
        return Ineq(tuple(as_fraction(c) for c in coeffs), as_fraction(const))

    @property
    def nvars(self) -> int:
        return len(self.coeffs)

    def is_constant(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def normalized(self) -> "Ineq":
        """Divide through by the (positive) gcd of all coefficients."""
        g = vec_gcd(list(self.coeffs) + [self.const])
        if g == 0 or g == 1:
            return self
        return Ineq(tuple(c / g for c in self.coeffs), self.const / g)

    def eval(self, point: Sequence) -> Fraction:
        return (
            sum((as_fraction(c) * as_fraction(x) for c, x in zip(self.coeffs, point)),
                Fraction(0))
            + self.const
        )

    def holds(self, point: Sequence) -> bool:
        return self.eval(point) >= 0


@dataclass(frozen=True)
class AffineForm:
    """``sum_j coeffs[j] * x_j + const`` -- one candidate bound expression."""

    coeffs: tuple[Fraction, ...]
    const: Fraction

    def eval(self, point: Sequence) -> Fraction:
        return (
            sum((c * as_fraction(x) for c, x in zip(self.coeffs, point)), Fraction(0))
            + self.const
        )

    def render(self, names: Sequence[str]) -> str:
        """Human/Python-readable rendering, e.g. ``-i1p + 8`` or ``3``."""
        parts: list[str] = []
        for c, name in zip(self.coeffs, names):
            if c == 0:
                continue
            if c == 1:
                parts.append(f"+ {name}" if parts else name)
            elif c == -1:
                parts.append(f"- {name}" if parts else f"-{name}")
            else:
                cs = str(c) if c.denominator == 1 else f"({c})"
                if parts:
                    parts.append(f"+ {cs}*{name}" if c > 0 else f"- {str(-c) if c.denominator==1 else f'({-c})'}*{name}")
                else:
                    parts.append(f"{cs}*{name}")
        if self.const != 0 or not parts:
            cs = str(self.const)
            if parts:
                parts.append(f"+ {cs}" if self.const > 0 else f"- {-self.const}")
            else:
                parts.append(cs)
        return " ".join(parts)


@dataclass
class LoopBound:
    """Lower/upper bound candidates for one loop variable.

    The runtime value is ``max(ceil(e) for e in lowers)`` and
    ``min(floor(e) for e in uppers)``; expressions are affine in the
    *enclosing* loop variables (entries beyond the enclosing prefix are
    guaranteed zero).
    """

    var_index: int
    lowers: list[AffineForm]
    uppers: list[AffineForm]

    def lower_value(self, prefix: Sequence) -> int:
        if not self.lowers:
            raise ValueError(f"variable {self.var_index} is unbounded below")
        return max(ceil(e.eval(prefix)) for e in self.lowers)

    def upper_value(self, prefix: Sequence) -> int:
        if not self.uppers:
            raise ValueError(f"variable {self.var_index} is unbounded above")
        return min(floor(e.eval(prefix)) for e in self.uppers)

    def range_for(self, prefix: Sequence) -> range:
        return range(self.lower_value(prefix), self.upper_value(prefix) + 1)


class FMSystem:
    """A conjunction of affine inequalities over ``nvars`` variables."""

    def __init__(self, nvars: int, ineqs: Iterable[Ineq] = ()):
        self.nvars = nvars
        self.ineqs: list[Ineq] = []
        seen: set[tuple] = set()
        for q in ineqs:
            if q.nvars != nvars:
                raise ValueError("inequality arity mismatch")
            q = q.normalized()
            key = (q.coeffs, q.const)
            if key not in seen:
                seen.add(key)
                self.ineqs.append(q)

    def add(self, coeffs: Sequence, const) -> None:
        q = Ineq.make(coeffs, const).normalized()
        key = (q.coeffs, q.const)
        if key not in {(p.coeffs, p.const) for p in self.ineqs}:
            self.ineqs.append(q)

    def add_lower(self, var: int, value) -> None:
        """Constrain ``x_var >= value`` (constant)."""
        c = [Fraction(0)] * self.nvars
        c[var] = Fraction(1)
        self.add(c, -as_fraction(value))

    def add_upper(self, var: int, value) -> None:
        """Constrain ``x_var <= value`` (constant)."""
        c = [Fraction(0)] * self.nvars
        c[var] = Fraction(-1)
        self.add(c, as_fraction(value))

    def satisfied_by(self, point: Sequence) -> bool:
        return all(q.holds(point) for q in self.ineqs)

    def is_trivially_infeasible(self) -> bool:
        return any(q.is_constant() and q.const < 0 for q in self.ineqs)

    def copy(self) -> "FMSystem":
        return FMSystem(self.nvars, list(self.ineqs))


def eliminate(system: FMSystem, var: int) -> FMSystem:
    """Project the system onto the remaining variables (drop ``var``).

    The eliminated variable's coefficient becomes 0 in every resulting
    inequality (arity is kept so variable indices stay stable).
    """
    pos = [q for q in system.ineqs if q.coeffs[var] > 0]
    neg = [q for q in system.ineqs if q.coeffs[var] < 0]
    zero = [q for q in system.ineqs if q.coeffs[var] == 0]
    out = FMSystem(system.nvars, zero)
    for p in pos:
        for q in neg:
            cp, cq = p.coeffs[var], q.coeffs[var]
            coeffs = tuple(
                a * (-cq) + b * cp for a, b in zip(p.coeffs, q.coeffs)
            )
            const = p.const * (-cq) + q.const * cp
            out.add(coeffs, const)
    return out


def bounds_for_order(system: FMSystem, order: Sequence[int]) -> list[LoopBound]:
    """Loop bounds for nesting order ``order[0]`` (outermost) ... ``order[-1]``.

    ``order`` must be a permutation of ``range(system.nvars)``.  The
    returned list is parallel to ``order``; ``bounds[j]`` expressions
    reference only ``order[:j]`` positions (re-indexed: coefficient
    ``i`` of a bound applies to the value of variable ``order[i]``).

    Raises :class:`ValueError` if the polyhedron leaves some variable
    unbounded in the needed direction.
    """
    if sorted(order) != list(range(system.nvars)):
        raise ValueError(f"order {order} is not a permutation of 0..{system.nvars - 1}")
    systems: list[FMSystem] = [None] * len(order)  # type: ignore[list-item]
    s = system.copy()
    for depth in range(len(order) - 1, -1, -1):
        systems[depth] = s
        s = eliminate(s, order[depth])
    if s.is_trivially_infeasible():
        # Empty iteration domain: produce bounds that yield empty ranges.
        empty = [
            LoopBound(v, [AffineForm(tuple([Fraction(0)] * len(order)), Fraction(1))],
                      [AffineForm(tuple([Fraction(0)] * len(order)), Fraction(0))])
            for v in order
        ]
        return empty

    bounds: list[LoopBound] = []
    for depth, var in enumerate(order):
        sys_here = systems[depth]
        lowers: list[AffineForm] = []
        uppers: list[AffineForm] = []
        for q in sys_here.ineqs:
            cv = q.coeffs[var]
            if cv == 0:
                continue
            # Solve c_v * x_var + sum_others + const >= 0 for x_var.
            others = [Fraction(0)] * len(order)
            for pos_idx in range(depth):
                others[pos_idx] = q.coeffs[order[pos_idx]]
            # Any nonzero coefficient on a *later* variable would mean the
            # elimination order was violated; guard against it.
            for later in order[depth + 1:]:
                if q.coeffs[later] != 0:
                    raise AssertionError("inequality mentions an uneliminated variable")
            if cv > 0:
                form = AffineForm(tuple(-o / cv for o in others), -q.const / cv)
                lowers.append(form)
            else:
                form = AffineForm(tuple(o / (-cv) for o in others), q.const / (-cv))
                uppers.append(form)
        if not lowers or not uppers:
            raise ValueError(
                f"variable x_{var} is unbounded ({'below' if not lowers else 'above'})"
            )
        bounds.append(LoopBound(var, lowers, uppers))
    return bounds


def enumerate_integer_points(system: FMSystem, order: Optional[Sequence[int]] = None):
    """Yield all integer points of the polyhedron in lexicographic loop order.

    Convenience used by tests and by the transformed-nest executor.
    """
    if order is None:
        order = list(range(system.nvars))
    bounds = bounds_for_order(system, order)

    point = [0] * system.nvars

    def rec(depth: int):
        if depth == len(order):
            yield RatVec(list(point))
            return
        prefix = [point[order[i]] for i in range(depth)]
        for val in bounds[depth].range_for(prefix):
            point[order[depth]] = val
            yield from rec(depth + 1)

    yield from rec(0)
