"""Dense rational matrices and vectors over :class:`fractions.Fraction`.

A :class:`RatMat` is a small, immutable-by-convention dense matrix whose
entries are exact rationals.  It supports the handful of operations the
partitioning analysis needs (arithmetic, stacking, slicing, exact
equality) without pulling in sympy.  :class:`RatVec` is a thin tuple
wrapper with vector arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Iterator, Sequence, Union

Number = Union[int, Fraction]


def as_fraction(x: Number) -> Fraction:
    """Coerce ``x`` to an exact :class:`Fraction`.

    Floats are rejected deliberately: a float sneaking into the analysis
    would silently destroy exactness.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    raise TypeError(f"expected int or Fraction, got {type(x).__name__}: {x!r}")


def frac_gcd(a: Fraction, b: Fraction) -> Fraction:
    """gcd extended to rationals: ``gcd(p1/q1, p2/q2) = gcd(p1,p2)/lcm(q1,q2)``.

    Satisfies ``a / frac_gcd(a,b)`` and ``b / frac_gcd(a,b)`` integral.
    ``frac_gcd(0, 0) == 0``.
    """
    a, b = as_fraction(a), as_fraction(b)
    if a == 0 and b == 0:
        return Fraction(0)
    num = gcd(a.numerator, b.numerator)
    den = (a.denominator * b.denominator) // gcd(a.denominator, b.denominator)
    return Fraction(num, den)


def vec_gcd(vec: Sequence[Number]) -> Fraction:
    """gcd of a rational vector's entries (0 for the zero vector)."""
    g = Fraction(0)
    for x in vec:
        g = frac_gcd(g, as_fraction(x))
    return g


class RatVec:
    """An exact rational vector.

    Hashable and comparable, so vectors can key dicts and sets (used to
    group iterations into blocks by their projection key).
    """

    __slots__ = ("_data",)

    def __init__(self, entries: Iterable[Number]):
        self._data: tuple[Fraction, ...] = tuple(as_fraction(x) for x in entries)

    # -- construction -------------------------------------------------
    @staticmethod
    def zero(n: int) -> "RatVec":
        return RatVec([0] * n)

    @staticmethod
    def unit(n: int, i: int) -> "RatVec":
        """The ``i``-th standard basis vector of length ``n``."""
        if not 0 <= i < n:
            raise IndexError(f"unit index {i} out of range for length {n}")
        return RatVec([1 if j == i else 0 for j in range(n)])

    # -- container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Fraction]:
        return iter(self._data)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return RatVec(self._data[i])
        return self._data[i]

    def __hash__(self) -> int:
        return hash(self._data)

    def __eq__(self, other) -> bool:
        if isinstance(other, RatVec):
            return self._data == other._data
        if isinstance(other, (tuple, list)):
            return self._data == tuple(as_fraction(x) for x in other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"RatVec({[str(x) for x in self._data]})"

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "RatVec") -> "RatVec":
        self._check_len(other)
        return RatVec(a + b for a, b in zip(self._data, other._data))

    def __sub__(self, other: "RatVec") -> "RatVec":
        self._check_len(other)
        return RatVec(a - b for a, b in zip(self._data, other._data))

    def __neg__(self) -> "RatVec":
        return RatVec(-a for a in self._data)

    def __mul__(self, k: Number) -> "RatVec":
        k = as_fraction(k)
        return RatVec(a * k for a in self._data)

    __rmul__ = __mul__

    def dot(self, other: "RatVec") -> Fraction:
        self._check_len(other)
        return sum((a * b for a, b in zip(self._data, other._data)), Fraction(0))

    def is_zero(self) -> bool:
        return all(a == 0 for a in self._data)

    def is_integral(self) -> bool:
        return all(a.denominator == 1 for a in self._data)

    def to_ints(self) -> tuple[int, ...]:
        if not self.is_integral():
            raise ValueError(f"{self!r} is not integral")
        return tuple(int(a) for a in self._data)

    def primitive(self) -> "RatVec":
        """Scale to an integer vector with gcd 1 (sign of first nonzero kept).

        This is the paper's normalization for the kernel basis ``Q``
        (``gcd(a_{i,1},...,a_{i,n}) = 1``).  The zero vector maps to
        itself.
        """
        g = vec_gcd(self._data)
        if g == 0:
            return self
        return RatVec(a / g for a in self._data)

    def lex_sign(self) -> int:
        """Sign of the lexicographic comparison with the zero vector.

        +1 if the first nonzero entry is positive, -1 if negative,
        0 for the zero vector.  Used for dependence direction tests.
        """
        for a in self._data:
            if a > 0:
                return 1
            if a < 0:
                return -1
        return 0

    def _check_len(self, other: "RatVec") -> None:
        if len(self._data) != len(other._data):
            raise ValueError(f"length mismatch: {len(self._data)} vs {len(other._data)}")


class RatMat:
    """A dense exact-rational matrix (list of :class:`RatVec` rows)."""

    __slots__ = ("_rows", "nrows", "ncols")

    def __init__(self, rows: Iterable[Iterable[Number]]):
        self._rows: tuple[RatVec, ...] = tuple(
            r if isinstance(r, RatVec) else RatVec(r) for r in rows
        )
        self.nrows = len(self._rows)
        if self.nrows == 0:
            raise ValueError("RatMat needs at least one row; use RatMat.empty(ncols)")
        self.ncols = len(self._rows[0])
        for r in self._rows:
            if len(r) != self.ncols:
                raise ValueError("ragged rows in RatMat")

    # -- construction --------------------------------------------------
    @staticmethod
    def identity(n: int) -> "RatMat":
        return RatMat([RatVec.unit(n, i) for i in range(n)])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "RatMat":
        return RatMat([[0] * ncols for _ in range(nrows)])

    @staticmethod
    def from_cols(cols: Sequence[Sequence[Number]]) -> "RatMat":
        return RatMat(cols).T

    @staticmethod
    def diag(entries: Sequence[Number]) -> "RatMat":
        n = len(entries)
        return RatMat(
            [[entries[i] if i == j else 0 for j in range(n)] for i in range(n)]
        )

    # -- container protocol ---------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def row(self, i: int) -> RatVec:
        return self._rows[i]

    def col(self, j: int) -> RatVec:
        return RatVec(r[j] for r in self._rows)

    def rows(self) -> tuple[RatVec, ...]:
        return self._rows

    def __getitem__(self, ij: tuple[int, int]) -> Fraction:
        i, j = ij
        return self._rows[i][j]

    def __eq__(self, other) -> bool:
        if not isinstance(other, RatMat):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = "; ".join("[" + ", ".join(str(x) for x in r) + "]" for r in self._rows)
        return f"RatMat({body})"

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "RatMat") -> "RatMat":
        self._check_shape(other)
        return RatMat(a + b for a, b in zip(self._rows, other._rows))

    def __sub__(self, other: "RatMat") -> "RatMat":
        self._check_shape(other)
        return RatMat(a - b for a, b in zip(self._rows, other._rows))

    def __neg__(self) -> "RatMat":
        return RatMat(-r for r in self._rows)

    def scale(self, k: Number) -> "RatMat":
        return RatMat(r * k for r in self._rows)

    def __matmul__(self, other):
        if isinstance(other, RatVec):
            if self.ncols != len(other):
                raise ValueError(f"shape mismatch {self.shape} @ len {len(other)}")
            return RatVec(r.dot(other) for r in self._rows)
        if isinstance(other, RatMat):
            if self.ncols != other.nrows:
                raise ValueError(f"shape mismatch {self.shape} @ {other.shape}")
            ocols = [other.col(j) for j in range(other.ncols)]
            return RatMat(
                [RatVec(r.dot(c) for c in ocols) for r in self._rows]
            )
        raise TypeError(f"cannot multiply RatMat by {type(other).__name__}")

    @property
    def T(self) -> "RatMat":
        return RatMat(
            [RatVec(self._rows[i][j] for i in range(self.nrows)) for j in range(self.ncols)]
        )

    # -- structure -------------------------------------------------------
    def vstack(self, other: "RatMat") -> "RatMat":
        if self.ncols != other.ncols:
            raise ValueError("vstack column mismatch")
        return RatMat(self._rows + other._rows)

    def hstack(self, other: "RatMat") -> "RatMat":
        if self.nrows != other.nrows:
            raise ValueError("hstack row mismatch")
        return RatMat(
            [RatVec(tuple(a) + tuple(b)) for a, b in zip(self._rows, other._rows)]
        )

    def submatrix(self, rows: Sequence[int], cols: Sequence[int]) -> "RatMat":
        return RatMat([[self._rows[i][j] for j in cols] for i in rows])

    def is_zero(self) -> bool:
        return all(r.is_zero() for r in self._rows)

    def is_integral(self) -> bool:
        return all(r.is_integral() for r in self._rows)

    def to_int_rows(self) -> list[list[int]]:
        if not self.is_integral():
            raise ValueError("matrix is not integral")
        return [[int(x) for x in r] for r in self._rows]

    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def det(self) -> Fraction:
        """Exact determinant via fraction-free-ish Gaussian elimination."""
        if not self.is_square():
            raise ValueError("determinant of a non-square matrix")
        n = self.nrows
        a = [list(r) for r in self._rows]
        det = Fraction(1)
        for k in range(n):
            piv = next((i for i in range(k, n) if a[i][k] != 0), None)
            if piv is None:
                return Fraction(0)
            if piv != k:
                a[k], a[piv] = a[piv], a[k]
                det = -det
            det *= a[k][k]
            inv = 1 / a[k][k]
            for i in range(k + 1, n):
                if a[i][k] != 0:
                    f = a[i][k] * inv
                    for j in range(k, n):
                        a[i][j] -= f * a[k][j]
        return det

    def inverse(self) -> "RatMat":
        """Exact inverse via Gauss-Jordan; raises on singular matrices."""
        if not self.is_square():
            raise ValueError("inverse of a non-square matrix")
        n = self.nrows
        a = [list(r) + [Fraction(int(i == j)) for j in range(n)] for i, r in enumerate(self._rows)]
        for k in range(n):
            piv = next((i for i in range(k, n) if a[i][k] != 0), None)
            if piv is None:
                raise ZeroDivisionError("matrix is singular")
            a[k], a[piv] = a[piv], a[k]
            inv = 1 / a[k][k]
            a[k] = [x * inv for x in a[k]]
            for i in range(n):
                if i != k and a[i][k] != 0:
                    f = a[i][k]
                    a[i] = [x - f * y for x, y in zip(a[i], a[k])]
        return RatMat([row[n:] for row in a])

    def _check_shape(self, other: "RatMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
