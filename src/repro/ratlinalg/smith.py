"""Smith normal form and integer (Diophantine) linear systems.

Definition 4 condition (2) of the paper asks whether the solution set
``t0 + Ker(H)`` of ``H t = r`` contains an *integer* vector that is the
difference of two iterations.  Integer solvability of ``H t = r`` is a
linear Diophantine question, decided exactly here via the Smith normal
form ``D = U H V`` with unimodular ``U``, ``V``:

- ``H t = r`` has an integer solution iff ``D y = U r`` does, i.e. iff
  ``d_i | (U r)_i`` for every nonzero diagonal ``d_i`` and ``(U r)_i = 0``
  for every zero row;
- the set of integer solutions is ``t0 + L`` where ``L`` is the integer
  lattice spanned by the last ``n - rank`` columns of ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.ratlinalg.matrix import RatMat, RatVec


def _swap_rows(a, i, j):
    a[i], a[j] = a[j], a[i]


def _swap_cols(a, i, j):
    for row in a:
        row[i], row[j] = row[j], row[i]


def _add_row(a, dst, src, k):
    """row[dst] += k * row[src]"""
    a[dst] = [x + k * y for x, y in zip(a[dst], a[src])]


def _add_col(a, dst, src, k):
    for row in a:
        row[dst] += k * row[src]


def _negate_row(a, i):
    a[i] = [-x for x in a[i]]


def _negate_col(a, j):
    for row in a:
        row[j] = -row[j]


def smith_normal_form(m: RatMat) -> tuple[RatMat, RatMat, RatMat]:
    """Smith normal form of an integer matrix.

    Returns ``(U, D, V)`` with ``D = U @ m @ V`` diagonal, ``U`` and
    ``V`` unimodular (det +-1), and each diagonal entry dividing the
    next.  Raises :class:`ValueError` if ``m`` is not integral.
    """
    if not m.is_integral():
        raise ValueError("Smith normal form requires an integer matrix")
    a = [[int(x) for x in row] for row in m.rows()]
    nrows, ncols = m.shape
    u = [[int(i == j) for j in range(nrows)] for i in range(nrows)]
    v = [[int(i == j) for j in range(ncols)] for i in range(ncols)]

    def pivot_search(k: int) -> Optional[tuple[int, int]]:
        best = None
        for i in range(k, nrows):
            for j in range(k, ncols):
                if a[i][j] != 0 and (best is None or abs(a[i][j]) < abs(a[best[0]][best[1]])):
                    best = (i, j)
        return best

    k = 0
    while k < min(nrows, ncols):
        pos = pivot_search(k)
        if pos is None:
            break
        i, j = pos
        if i != k:
            _swap_rows(a, i, k)
            _swap_rows(u, i, k)
        if j != k:
            _swap_cols(a, j, k)
            _swap_cols(v, j, k)
        # Reduce column k and row k until the pivot divides everything
        # in its row/column, then clear them.
        while True:
            progressed = False
            for i in range(k + 1, nrows):
                if a[i][k] != 0:
                    q = a[i][k] // a[k][k]
                    _add_row(a, i, k, -q)
                    _add_row(u, i, k, -q)
                    if a[i][k] != 0:
                        # remainder became new (smaller) pivot
                        _swap_rows(a, i, k)
                        _swap_rows(u, i, k)
                        progressed = True
            for j in range(k + 1, ncols):
                if a[k][j] != 0:
                    q = a[k][j] // a[k][k]
                    _add_col(a, j, k, -q)
                    _add_col(v, j, k, -q)
                    if a[k][j] != 0:
                        _swap_cols(a, j, k)
                        _swap_cols(v, j, k)
                        progressed = True
            if not progressed:
                break
        # Divisibility fix-up: pivot must divide every remaining entry.
        fixed = True
        for i in range(k + 1, nrows):
            for j in range(k + 1, ncols):
                if a[i][j] % a[k][k] != 0:
                    _add_row(a, k, i, 1)
                    _add_row(u, k, i, 1)
                    fixed = False
                    break
            if not fixed:
                break
        if not fixed:
            continue  # redo reduction at the same k
        if a[k][k] < 0:
            _negate_row(a, k)
            _negate_row(u, k)
        k += 1

    return RatMat(u), RatMat(a), RatMat(v)


@dataclass(frozen=True)
class DiophantineSolution:
    """Integer solution set ``{ t0 + sum_i c_i b_i : c_i in Z }`` of ``A t = r``."""

    particular: RatVec          # an integer particular solution t0
    lattice_basis: tuple[RatVec, ...]  # integer basis of the solution lattice

    @property
    def dim(self) -> int:
        return len(self.lattice_basis)


def solve_diophantine(a: RatMat, r: RatVec) -> Optional[DiophantineSolution]:
    """All integer solutions of ``a t = r``; ``None`` if there are none.

    ``a`` must be integral; ``r`` may be rational (a non-integral ``r``
    with integral ``a`` is simply unsolvable over Z unless the fractions
    cancel, which they cannot -- we check and return ``None``).
    """
    if a.nrows != len(r):
        raise ValueError(f"shape mismatch: {a.shape} vs rhs length {len(r)}")
    if not all(x.denominator == 1 for x in r):
        return None
    u, d, v = smith_normal_form(a)
    ur = u @ r
    ncols = a.ncols
    rank = sum(1 for i in range(min(d.nrows, d.ncols)) if d[i, i] != 0)
    y = [Fraction(0)] * ncols
    for i in range(len(ur)):
        di = d[i, i] if i < min(d.nrows, d.ncols) else Fraction(0)
        if di == 0:
            if ur[i] != 0:
                return None
        else:
            q = ur[i] / di
            if q.denominator != 1:
                return None
            if i < ncols:
                y[i] = q
    t0 = v @ RatVec(y)
    basis = tuple(v.col(j) for j in range(rank, ncols))
    return DiophantineSolution(particular=t0, lattice_basis=basis)
