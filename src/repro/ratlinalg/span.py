"""Rational vector subspaces: ``span(X)`` as a first-class object.

The paper manipulates subspaces constantly -- reference spaces
``Psi_A``, their unions across arrays (Theorems 1-4), kernels, and
``Ker(Psi)`` for the transformation.  :class:`Subspace` provides exact
membership, sums, complements and projections.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from repro.ratlinalg.matrix import RatMat, RatVec
from repro.ratlinalg.rref import nullspace, rref


class Subspace:
    """A linear subspace of Q^n represented by a canonical RREF basis.

    Two subspaces are equal iff their canonical bases are equal, so
    ``==`` implements true set equality of subspaces.
    """

    __slots__ = ("ambient_dim", "_basis")

    def __init__(self, ambient_dim: int, vectors: Iterable[Sequence] = ()):
        self.ambient_dim = ambient_dim
        vecs = [v if isinstance(v, RatVec) else RatVec(v) for v in vectors]
        for v in vecs:
            if len(v) != ambient_dim:
                raise ValueError(
                    f"vector of length {len(v)} in ambient dimension {ambient_dim}"
                )
        nonzero = [v for v in vecs if not v.is_zero()]
        if not nonzero:
            self._basis: tuple[RatVec, ...] = ()
        else:
            R, pivots = rref(RatMat(nonzero))
            self._basis = tuple(R.row(i) for i in range(len(pivots)))

    # -- constructors ----------------------------------------------------
    @staticmethod
    def zero(ambient_dim: int) -> "Subspace":
        """``span(φ)`` -- the trivial subspace {0}."""
        return Subspace(ambient_dim, ())

    @staticmethod
    def full(ambient_dim: int) -> "Subspace":
        return Subspace(ambient_dim, RatMat.identity(ambient_dim).rows())

    @staticmethod
    def kernel_of(m: RatMat) -> "Subspace":
        """``Ker(m)`` as a subspace of Q^ncols."""
        return Subspace(m.ncols, nullspace(m))

    # -- basic queries -----------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self._basis)

    def basis(self) -> tuple[RatVec, ...]:
        """The canonical (RREF) basis."""
        return self._basis

    def primitive_basis(self) -> list[RatVec]:
        """Basis scaled to integer vectors with gcd 1 (paper's ``Q`` convention)."""
        return [v.primitive() for v in self._basis]

    def is_zero(self) -> bool:
        return self.dim == 0

    def is_full(self) -> bool:
        return self.dim == self.ambient_dim

    def __contains__(self, v) -> bool:
        if not isinstance(v, RatVec):
            v = RatVec(v)
        if len(v) != self.ambient_dim:
            return False
        if v.is_zero():
            return True
        if self.dim == 0:
            return False
        stacked = RatMat(list(self._basis) + [v])
        _, pivots = rref(stacked)
        return len(pivots) == self.dim

    def __eq__(self, other) -> bool:
        if not isinstance(other, Subspace):
            return NotImplemented
        return self.ambient_dim == other.ambient_dim and self._basis == other._basis

    def __hash__(self) -> int:
        return hash((self.ambient_dim, self._basis))

    def __repr__(self) -> str:
        if self.dim == 0:
            return f"Subspace(dim=0 in Q^{self.ambient_dim})"
        vecs = ", ".join(
            "(" + ", ".join(str(x) for x in v) + ")" for v in self.primitive_basis()
        )
        return f"Subspace(span{{{vecs}}} in Q^{self.ambient_dim})"

    # -- algebra ---------------------------------------------------------
    def union_span(self, other: "Subspace") -> "Subspace":
        """``span(X1 ∪ X2)`` -- the subspace sum (paper's partitioning-space union)."""
        if self.ambient_dim != other.ambient_dim:
            raise ValueError("ambient dimension mismatch")
        return Subspace(self.ambient_dim, list(self._basis) + list(other._basis))

    __or__ = union_span

    def with_vectors(self, vectors: Iterable[Sequence]) -> "Subspace":
        return Subspace(self.ambient_dim, list(self._basis) + [
            v if isinstance(v, RatVec) else RatVec(v) for v in vectors
        ])

    def intersect(self, other: "Subspace") -> "Subspace":
        """Exact subspace intersection (via the complement of the sum of complements)."""
        return self.orthogonal_complement().union_span(
            other.orthogonal_complement()
        ).orthogonal_complement()

    def is_subspace_of(self, other: "Subspace") -> bool:
        return all(v in other for v in self._basis)

    # -- complements & projections ------------------------------------------
    def orthogonal_complement(self) -> "Subspace":
        """``Ker(Psi)`` in the Section-IV sense: {x : b·x = 0 for all b in basis}."""
        if self.dim == 0:
            return Subspace.full(self.ambient_dim)
        return Subspace.kernel_of(RatMat(self._basis))

    def projection_matrix(self) -> RatMat:
        """Exact orthogonal projection matrix onto this subspace."""
        n = self.ambient_dim
        if self.dim == 0:
            return RatMat.zeros(n, n)
        b = RatMat(self._basis).T  # n x k, columns span the space
        bt = b.T
        return b @ (bt @ b).inverse() @ bt

    def complement_projection_matrix(self) -> RatMat:
        """Projection onto the orthogonal complement (``I - P``)."""
        return RatMat.identity(self.ambient_dim) - self.projection_matrix()

    def project(self, v: RatVec) -> RatVec:
        return self.projection_matrix() @ v

    def coset_key(self, v: RatVec, _cache={}) -> tuple:
        """Canonical key identifying the coset ``v + self``.

        Two vectors get equal keys iff their difference lies in the
        subspace -- exactly the paper's criterion for two iterations to
        share an iteration block (Definition 2).
        """
        key = (self.ambient_dim, self._basis)
        proj = _cache.get(key)
        if proj is None:
            proj = self.complement_projection_matrix()
            _cache[key] = proj
        return tuple(proj @ v)
