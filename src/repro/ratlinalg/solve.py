"""Rational linear system solving: particular solutions and full solution sets.

``solve_particular(A, b)`` answers "does ``A t = b`` have any rational
solution, and if so give me one" -- Definition 4 condition (1).  The
full solution set ``t0 + Ker(A)`` is what condition (2) then filters for
in-range integer points (see :mod:`repro.ratlinalg.smith` and
:mod:`repro.ratlinalg.lattice`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.ratlinalg.matrix import RatMat, RatVec
from repro.ratlinalg.rref import nullspace, rref


def solve_particular(a: RatMat, b: RatVec) -> Optional[RatVec]:
    """One rational solution of ``a x = b``, or ``None`` if inconsistent.

    The solution returned is the one with zeros in all free-variable
    positions (the canonical RREF particular solution).
    """
    if a.nrows != len(b):
        raise ValueError(f"shape mismatch: {a.shape} vs rhs of length {len(b)}")
    aug = a.hstack(RatMat([[x] for x in b]))
    R, pivots = rref(aug)
    ncols = a.ncols
    # Inconsistent iff some pivot lands in the augmented column.
    if ncols in pivots:
        return None
    x = [Fraction(0)] * ncols
    for row_idx, p in enumerate(pivots):
        x[p] = R[row_idx, ncols]
    return RatVec(x)


def solve_full(a: RatMat, b: RatVec) -> Optional[tuple[RatVec, list[RatVec]]]:
    """The full rational solution set of ``a x = b``.

    Returns ``(t0, kernel_basis)`` describing ``{t0 + sum c_i k_i}``,
    or ``None`` if the system is inconsistent.
    """
    t0 = solve_particular(a, b)
    if t0 is None:
        return None
    return t0, nullspace(a)
