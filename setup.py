"""Legacy setuptools shim.

Kept so environments without PEP-517 wheel support (e.g. offline boxes
lacking the `wheel` package) can still do `pip install -e . --no-build-isolation`
or fall back to a `.pth`-based source install (see README).
"""

from setuptools import setup

setup()
